// Package marginal implements marginal contingency tables over subsets
// of binary attributes, together with the projection, noising and
// normalization operations the PriView pipeline is built from.
//
// A table over an attribute set A = {a_0 < a_1 < ... < a_{m-1}} has 2^m
// cells. Cell index i encodes the assignment in which attribute a_j takes
// the value of bit j of i. All tables keep their attribute list sorted
// ascending so that two tables over the same set index cells identically.
package marginal

import (
	"fmt"
	"math"
	"sort"

	"priview/internal/attrset"
)

// Table is a (possibly noisy) marginal contingency table over a set of
// binary attributes identified by their global indices.
type Table struct {
	// Attrs lists the attributes the table marginalizes over, sorted
	// ascending. It must not be mutated after construction.
	Attrs []int
	// Cells holds one count per assignment; len(Cells) == 1<<len(Attrs).
	Cells []float64
	// mask is Attrs as an attrset bitmask, precomputed by New so that
	// set algebra on tables (subset tests, intersections, equality of
	// attribute sets) costs one word operation instead of a merge loop.
	mask attrset.Set
}

// New returns a zeroed table over the given attributes. The attribute
// slice is copied and sorted; duplicates cause a panic because a marginal
// over a multiset of attributes is meaningless, and indices outside
// [0, 64) are rejected here — tables carry their attribute set as a
// one-word attrset bitmask, leaning on the repo-wide d < 64 invariant
// that dataset and core.Config enforce with typed errors at the input
// boundary.
func New(attrs []int) *Table {
	a := append([]int(nil), attrs...)
	sort.Ints(a)
	mask, err := attrset.FromAttrs(a)
	if err != nil {
		panic(fmt.Sprintf("marginal: %v", err))
	}
	if len(a) > 30 {
		panic(fmt.Sprintf("marginal: table over %d attributes would need 2^%d cells", len(a), len(a)))
	}
	return &Table{Attrs: a, mask: mask, Cells: make([]float64, 1<<uint(len(a)))}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		Attrs: append([]int(nil), t.Attrs...),
		Cells: append([]float64(nil), t.Cells...),
		mask:  t.mask,
	}
	return c
}

// Mask returns the table's attribute set as an attrset bitmask. Tables
// built by New always carry the precomputed mask; a table assembled by
// struct literal (possible only for the zero mask) falls back to
// packing Attrs on the fly so the answer is correct either way.
func (t *Table) Mask() attrset.Set {
	if t.mask == 0 && len(t.Attrs) > 0 {
		return attrset.MustFromAttrs(t.Attrs)
	}
	return t.mask
}

// Dim returns the number of attributes the table covers.
func (t *Table) Dim() int { return len(t.Attrs) }

// Size returns the number of cells, 2^Dim.
func (t *Table) Size() int { return len(t.Cells) }

// Total returns the sum of all cells, i.e. T_A[∅] in the paper's
// notation. For a noise-free table this is N, the dataset size.
func (t *Table) Total() float64 {
	sum := 0.0
	for _, v := range t.Cells {
		sum += v
	}
	return sum
}

// HasAttr reports whether the table covers the given attribute.
func (t *Table) HasAttr(a int) bool {
	return t.Mask().Contains(a)
}

// Positions returns, for each attribute in sub, its bit position within
// the table's attribute list — its rank among the table's attributes,
// computed from the mask without a binary search. It panics if sub
// contains an attribute the table does not cover: projecting onto an
// uncovered attribute is always a caller bug.
func (t *Table) Positions(sub []int) []int {
	mask := t.Mask()
	pos := make([]int, len(sub))
	for i, a := range sub {
		if !mask.Contains(a) {
			panic(fmt.Sprintf("marginal: attribute %d not in table over %v", a, t.Attrs))
		}
		pos[i] = mask.Rank(a)
	}
	return pos
}

// RestrictIndex maps a cell index of this table to the corresponding cell
// index of a table over the sub-attributes whose bit positions (within
// this table) are given by pos. pos must be sorted ascending, which is
// automatic when produced by Positions on a sorted sub-set. Iteration
// loops that restrict every cell repeatedly should precompute the whole
// mapping once with RestrictIndices instead.
func RestrictIndex(idx int, pos []int) int {
	out := 0
	for j, p := range pos {
		out |= ((idx >> uint(p)) & 1) << uint(j)
	}
	return out
}

// restrictPrecomputeLimit bounds the table size for which Project and
// RestrictIndices materialize the full index mapping (4 bytes per
// cell). Above it — only reachable near the 30-attribute table cap —
// the per-cell bit-gather is used instead of a multi-hundred-MB side
// table.
const restrictPrecomputeLimit = 1 << 24

// RestrictIndices returns the precomputed projection mapping onto sub:
// out[i] is the cell of the sub-table that cell i of t projects into.
// Building it costs O(1) per cell; iterative solvers that restrict
// every cell once per iteration (max-entropy IPF, Dykstra, the dual
// ascent) hoist it out of the loop, replacing an O(|sub|) bit-gather
// per cell per iteration with an array load.
func (t *Table) RestrictIndices(sub []int) []int32 {
	// The positions of sub within t, packed as a bitmask over bit
	// positions, are exactly the PEXT mask for the cell indexing.
	pm := attrset.MustFromAttrs(t.Positions(sub))
	return attrset.RestrictTable(t.Dim(), uint64(pm))
}

// ProjectInto accumulates t's cells into dst according to ridx (as
// produced by RestrictIndices), zeroing dst first. It is the
// allocation-free core of Project, shared with the solver hot loops.
func (t *Table) ProjectInto(dst []float64, ridx []int32) {
	for i := range dst {
		dst[i] = 0
	}
	//lint:hot
	for i, v := range t.Cells {
		dst[ridx[i]] += v
	}
}

// Project returns the marginal table over sub ⊆ Attrs, written T_A[sub]
// in the paper: cells of the projection are sums of the cells of t that
// agree with the corresponding assignment of sub. The cell mapping is
// precomputed via the table's attribute mask; projecting onto the full
// attribute set degenerates to a copy.
func (t *Table) Project(sub []int) *Table {
	out := New(sub)
	if out.mask == t.Mask() && len(out.Attrs) == len(t.Attrs) {
		copy(out.Cells, t.Cells)
		return out
	}
	if len(t.Cells) <= restrictPrecomputeLimit {
		t.ProjectInto(out.Cells, t.RestrictIndices(out.Attrs))
		return out
	}
	pos := t.Positions(out.Attrs)
	for i, v := range t.Cells {
		out.Cells[RestrictIndex(i, pos)] += v
	}
	return out
}

// sameSet reports whether two tables cover the same attribute set — a
// one-word mask comparison, the unified replacement for the old
// sorted-slice walk.
func (t *Table) sameSet(o *Table) bool { return t.Mask() == o.Mask() }

// AddInto adds src's cells into t. Both tables must cover exactly the
// same attribute set.
func (t *Table) AddInto(src *Table) {
	if !t.sameSet(src) {
		panic("marginal: AddInto over mismatched attribute sets")
	}
	for i := range t.Cells {
		t.Cells[i] += src.Cells[i]
	}
}

// Scale multiplies every cell by f in place.
func (t *Table) Scale(f float64) {
	for i := range t.Cells {
		t.Cells[i] *= f
	}
}

// Fill sets every cell to v.
func (t *Table) Fill(v float64) {
	for i := range t.Cells {
		t.Cells[i] = v
	}
}

// Uniform returns a table over attrs in which the given total mass is
// spread evenly over all cells. This is the paper's Uniform baseline for
// a single marginal.
func Uniform(attrs []int, total float64) *Table {
	t := New(attrs)
	t.Fill(total / float64(len(t.Cells)))
	return t
}

// Normalize divides every cell by the total so that cells sum to 1,
// yielding norm(T) in the paper. A table with non-positive total cannot
// be normalized meaningfully; it is replaced by the uniform distribution,
// which is what a consumer with no usable information must assume.
func (t *Table) Normalize() {
	total := t.Total()
	if total <= 0 {
		t.Fill(1 / float64(len(t.Cells)))
		return
	}
	t.Scale(1 / total)
}

// Normalized returns a normalized copy, leaving t untouched.
func (t *Table) Normalized() *Table {
	c := t.Clone()
	c.Normalize()
	return c
}

// ClampNegatives sets every negative cell to zero in place and returns
// the amount of mass that was removed (as a non-negative number).
func (t *Table) ClampNegatives() float64 {
	removed := 0.0
	for i, v := range t.Cells {
		if v < 0 {
			removed -= v
			t.Cells[i] = 0
		}
	}
	return removed
}

// L2Distance returns the Euclidean distance between two tables over the
// same attribute set, viewed as vectors of 2^k cells.
func L2Distance(a, b *Table) float64 {
	if !a.sameSet(b) {
		panic("marginal: L2Distance over mismatched attribute sets")
	}
	sum := 0.0
	for i := range a.Cells {
		d := a.Cells[i] - b.Cells[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MaxAbsDiff returns the largest absolute cell-wise difference between
// two tables over the same attribute set.
func MaxAbsDiff(a, b *Table) float64 {
	if !a.sameSet(b) {
		panic("marginal: MaxAbsDiff over mismatched attribute sets")
	}
	m := 0.0
	for i := range a.Cells {
		d := math.Abs(a.Cells[i] - b.Cells[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Equal reports whether two tables cover the same attributes and agree on
// every cell to within tol. The attribute-set comparison is a one-word
// mask compare.
func Equal(a, b *Table, tol float64) bool {
	if !a.sameSet(b) {
		return false
	}
	for i := range a.Cells {
		if math.Abs(a.Cells[i]-b.Cells[i]) > tol {
			return false
		}
	}
	return true
}

// SameAttrs reports whether two sorted attribute slices denote the same
// attribute set. With the repo-wide d < 64 invariant both slices pack
// into single attrset masks, making this a word compare; slices that
// violate the invariant (possible only for ad-hoc caller input, never
// for Table.Attrs) fall back to an element-wise walk.
func SameAttrs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ma, errA := attrset.FromAttrs(a)
	mb, errB := attrset.FromAttrs(b)
	if errA == nil && errB == nil {
		return ma == mb
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Intersect returns the sorted intersection of two sorted attribute
// slices. Hot paths operate on attrset masks instead (Table.Mask);
// the slice versions remain as the reference implementation for
// ad-hoc slices and the attrset property tests.
func Intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Subset reports whether sorted slice a is a subset of sorted slice b.
func Subset(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// Union returns the sorted union of two sorted attribute slices.
func Union(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Key returns a canonical string key for a sorted attribute set, suitable
// for use as a map key when deduplicating sets. Hot paths (constraint
// dedupe, the query cache, the consistency closure) key on attrset
// masks instead — the word itself is the map key, with no per-call
// allocation; Key remains for cold paths (serialization, experiment
// labels) where a human-readable string is worth the allocation.
func Key(attrs []int) string {
	b := make([]byte, 0, len(attrs)*3)
	for _, a := range attrs {
		b = appendInt(b, a)
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// String renders a small table for debugging.
func (t *Table) String() string {
	return fmt.Sprintf("Table%v%v", t.Attrs, t.Cells)
}
