package marginal

import (
	"testing"

	"priview/internal/attrset"
)

// lcg is a tiny deterministic generator (no math/rand per the
// randsource policy; replays identically).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func (r *lcg) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func randomAttrsIn(r *lcg, bound, keepOneIn int) []int {
	var out []int
	for a := 0; a < bound; a++ {
		if int(r.next()%uint64(keepOneIn)) == 0 {
			out = append(out, a)
		}
	}
	return out
}

// bruteProject computes the projection with no index tricks at all:
// for every cell of t, recompute the sub-table index attribute by
// attribute from first principles. This is the oracle the mask fast
// paths (RestrictIndices / ProjectInto / Project) must match exactly —
// same cells, same accumulation order, so even the floating-point sums
// are bit-identical.
func bruteProject(t *Table, sub []int) *Table {
	out := New(sub)
	pos := make([]int, len(sub))
	for j, a := range sub {
		p := -1
		for k, b := range t.Attrs {
			if b == a {
				p = k
				break
			}
		}
		if p < 0 {
			panic("marginal: bruteProject attr not in table")
		}
		pos[j] = p
	}
	for i, v := range t.Cells {
		idx := 0
		for j, p := range pos {
			idx |= ((i >> uint(p)) & 1) << uint(j)
		}
		out.Cells[idx] += v
	}
	return out
}

// TestProjectMatchesBruteForce pits the mask-precomputed Project fast
// path against the first-principles cell restriction on random tables.
// Equality is exact (==): both paths must visit cells in ascending
// order, so the float accumulation order — and therefore the rounding —
// is identical.
func TestProjectMatchesBruteForce(t *testing.T) {
	r := lcg(99)
	for trial := 0; trial < 300; trial++ {
		attrs := randomAttrsIn(&r, 40, 5)
		if len(attrs) == 0 || len(attrs) > 10 {
			continue
		}
		tab := New(attrs)
		for i := range tab.Cells {
			tab.Cells[i] = r.float()*2000 - 500
		}
		var sub []int
		for _, a := range attrs {
			if r.next()%2 == 0 {
				sub = append(sub, a)
			}
		}
		want := bruteProject(tab, sub)
		got := tab.Project(sub)
		if !SameAttrs(got.Attrs, want.Attrs) {
			t.Fatalf("Project attrs %v, want %v", got.Attrs, want.Attrs)
		}
		for c := range want.Cells {
			//lint:ignore floatcmp exact equality is the point: identical accumulation order must give identical bits
			if got.Cells[c] != want.Cells[c] {
				t.Fatalf("Project(%v) cell %d = %v, brute force %v (attrs %v)", sub, c, got.Cells[c], want.Cells[c], attrs)
			}
		}
		// The zero-alloc hot-loop pair must agree with Project too.
		ridx := tab.RestrictIndices(sub)
		dst := make([]float64, want.Size())
		tab.ProjectInto(dst, ridx)
		for c := range want.Cells {
			//lint:ignore floatcmp exact equality is the point: identical accumulation order must give identical bits
			if dst[c] != want.Cells[c] {
				t.Fatalf("ProjectInto cell %d = %v, brute force %v", c, dst[c], want.Cells[c])
			}
		}
	}
}

// TestMaskMatchesAttrs: the precomputed mask always equals the packed
// attribute slice, including for tables assembled without New.
func TestMaskMatchesAttrs(t *testing.T) {
	r := lcg(5)
	for trial := 0; trial < 100; trial++ {
		attrs := randomAttrsIn(&r, 64, 8)
		if len(attrs) > 20 {
			continue
		}
		tab := New(attrs)
		if tab.Mask() != attrset.MustFromAttrs(attrs) {
			t.Fatalf("Mask() = %v for attrs %v", tab.Mask(), attrs)
		}
	}
	// Hand-built table (no New, zero mask field): Mask must compute on
	// the fly rather than return the zero value.
	hand := &Table{Attrs: []int{3, 7}, Cells: make([]float64, 4)}
	if hand.Mask() != attrset.Of(3, 7) {
		t.Fatalf("hand-built Mask() = %v", hand.Mask())
	}
}

// TestSameAttrsAgainstElementwise: the mask compare and the element
// walk must agree wherever both are defined, including non-canonical
// input the mask path cannot pack.
func TestSameAttrsAgainstElementwise(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 3}, false},
		{[]int{}, []int{}, true},
		{[]int{1}, []int{1, 2}, false},
		{[]int{64, 65}, []int{64, 65}, true},  // out of mask range: fallback path
		{[]int{64, 65}, []int{64, 66}, false}, // fallback path, different
		{[]int{70}, []int{71}, false},         // fallback path
		{[]int{5, 5}, []int{5, 5}, true},      // duplicates: fallback path
	}
	for _, c := range cases {
		if got := SameAttrs(c.a, c.b); got != c.want {
			t.Errorf("SameAttrs(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
