package snapshot

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"priview/internal/audit"
	"priview/internal/core"
)

// Store keeps a bounded, sequence-numbered history of snapshots in one
// directory: snapshot-000001.json, snapshot-000002.json, … Saving
// rotates out the oldest files beyond the retention count; loading
// walks the history newest-first, quarantines anything that fails the
// checksum, structural validation or invariant audit (renaming it to
// <name>.corrupt so it is never retried), and returns the newest
// snapshot that verifies end to end.
type Store struct {
	fsys FS
	dir  string
	keep int
}

const (
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".json"
	// corruptSuffix marks quarantined files; they no longer match the
	// snapshot name shape, so listing skips them.
	corruptSuffix = ".corrupt"
)

// NewStore opens (creating if needed) a snapshot store over the real
// filesystem, retaining keep snapshots (minimum 1; default 3 when
// keep <= 0).
func NewStore(dir string, keep int) (*Store, error) {
	return NewStoreFS(OS{}, dir, keep)
}

// NewStoreFS is NewStore with an injected filesystem (used by the
// chaos tests to prove corruption handling).
func NewStoreFS(fsys FS, dir string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = 3
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: creating store %s: %w", dir, err)
	}
	return &Store{fsys: fsys, dir: dir, keep: keep}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// seqOf parses the sequence number out of a snapshot file name,
// returning -1 for names that are not snapshots.
func seqOf(name string) int {
	if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
		return -1
	}
	num := name[len(snapshotPrefix) : len(name)-len(snapshotSuffix)]
	seq, err := strconv.Atoi(num)
	if err != nil || seq < 0 {
		return -1
	}
	return seq
}

// Snapshots lists the store's snapshot files, newest (highest
// sequence) first. Quarantined and foreign files are skipped.
func (st *Store) Snapshots() ([]string, error) {
	entries, err := st.fsys.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: listing %s: %w", st.dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || seqOf(e.Name()) < 0 {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Slice(names, func(i, j int) bool { return seqOf(names[i]) > seqOf(names[j]) })
	return names, nil
}

// Save writes the synopsis as the next snapshot in the sequence and
// prunes history beyond the retention count. It returns the path of
// the new snapshot.
func (st *Store) Save(s *core.Synopsis) (string, error) {
	names, err := st.Snapshots()
	if err != nil {
		return "", err
	}
	next := 1
	if len(names) > 0 {
		next = seqOf(names[0]) + 1
	}
	path := filepath.Join(st.dir, fmt.Sprintf("%s%06d%s", snapshotPrefix, next, snapshotSuffix))
	if err := WriteFile(st.fsys, path, s); err != nil {
		return "", err
	}
	// Prune beyond retention. names is pre-save, newest first; with the
	// new file we have len(names)+1 snapshots.
	for i := st.keep - 1; i < len(names); i++ {
		//lint:ignore errdiscard retention pruning is advisory; a leftover old snapshot is harmless
		_ = st.fsys.Remove(filepath.Join(st.dir, names[i]))
	}
	return path, nil
}

// LoadResult describes a successful Store.Load: which file verified,
// its audit report (which may carry warnings), and any corrupt files
// quarantined along the way.
type LoadResult struct {
	Synopsis *core.Synopsis
	// Path is the snapshot file that verified.
	Path string
	// Report is the invariant audit of the loaded synopsis.
	Report *audit.Report
	// Quarantined lists files (by new, post-rename path) that failed
	// verification during this load.
	Quarantined []string
	// Errs records why each quarantined file was rejected, parallel to
	// Quarantined.
	Errs []error
}

// Load returns the newest snapshot that passes the checksum, core's
// structural validation, and the invariant audit. Files that fail are
// quarantined (renamed to <name>.corrupt) and the next-newest is
// tried. It fails only when no snapshot verifies.
func (st *Store) Load() (*LoadResult, error) {
	names, err := st.Snapshots()
	if err != nil {
		return nil, err
	}
	res := &LoadResult{}
	for _, name := range names {
		path := filepath.Join(st.dir, name)
		syn, err := ReadFileFS(st.fsys, path)
		if err == nil {
			report := audit.Check(syn, audit.Options{})
			if aerr := report.Err(); aerr == nil {
				res.Synopsis, res.Path, res.Report = syn, path, report
				return res, nil
			} else {
				err = aerr
			}
		}
		quarantined := path + corruptSuffix
		if rerr := st.fsys.Rename(path, quarantined); rerr != nil {
			// Quarantine is best-effort: if even the rename fails the
			// file simply stays in place and will fail again next time.
			quarantined = path
		}
		res.Quarantined = append(res.Quarantined, quarantined)
		res.Errs = append(res.Errs, fmt.Errorf("%s: %w", name, err))
	}
	if len(res.Errs) > 0 {
		return nil, fmt.Errorf("snapshot: no verifiable snapshot in %s (%d rejected; newest: %w)",
			st.dir, len(res.Errs), res.Errs[0])
	}
	return nil, fmt.Errorf("snapshot: no snapshots in %s", st.dir)
}
