package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
)

func buildSyn(seed int64) *core.Synopsis {
	data := synth.MSNBC(1000, seed)
	dg := covering.Groups(9, 4)
	return core.BuildSynopsis(data, core.Config{Epsilon: 1, Design: dg}, noise.NewStream(seed))
}

func TestV2RoundTrip(t *testing.T) {
	s := buildSyn(1)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, attrs := range [][]int{{0, 1}, {2, 5, 7}} {
		if !marginal.Equal(s.Query(attrs), loaded.Query(attrs), 1e-9) {
			t.Errorf("query %v differs after v2 round trip", attrs)
		}
	}
}

// sameSynopsis compares two synopses exactly (zero tolerance): any
// accepted corruption that alters content must trip this.
func sameSynopsis(a, b *core.Synopsis) bool {
	if len(a.Views()) != len(b.Views()) {
		return false
	}
	av, bv := a.Views(), b.Views()
	for i := range av {
		if !marginal.Equal(av[i], bv[i], 0) {
			return false
		}
	}
	return marginal.Equal(
		marginal.Uniform([]int{0}, a.Total()),
		marginal.Uniform([]int{0}, b.Total()), 0)
}

// TestChecksumDetectsBitFlips flips bits across the serialized
// container and asserts that no flip can silently change the decoded
// synopsis: every mutation is either rejected (checksum, JSON parse or
// validation failure) or provably content-preserving (e.g. JSON's
// case-insensitive key matching tolerating a case flip in "format").
func TestChecksumDetectsBitFlips(t *testing.T) {
	s := buildSyn(2)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	step := 1
	if len(raw) > 2048 {
		step = len(raw) / 2048
	}
	silent := 0
	for pos := 0; pos < len(raw); pos += step {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 1 << uint(bit)
			if bytes.Equal(mut, raw) {
				continue
			}
			loaded, err := Decode(mut)
			if err == nil && !sameSynopsis(s, loaded) {
				silent++
				t.Errorf("bit flip at byte %d bit %d silently changed the synopsis", pos, bit)
				if silent > 5 {
					t.Fatal("too many silent corruptions")
				}
			}
		}
	}
}

func TestReadBareV1(t *testing.T) {
	s := buildSyn(3)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("bare v1 rejected: %v", err)
	}
	if !marginal.Equal(s.Query([]int{0, 1}), loaded.Query([]int{0, 1}), 1e-9) {
		t.Error("v1 query differs")
	}
}

// TestGoldenV1Compat pins byte-for-byte compatibility with the v1
// serialization: the checked-in golden file must load, and
// re-serializing the identical build must reproduce it exactly. If
// this fails, the on-disk format changed — readers in the wild would
// break.
func TestGoldenV1Compat(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "v1-golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("golden v1 file rejected: %v", err)
	}
	s := buildSyn(42)
	if !marginal.Equal(s.Query([]int{0, 1}), loaded.Query([]int{0, 1}), 1e-9) {
		t.Error("golden query differs from identical rebuild")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("v1 serialization changed: rebuilt %d bytes != golden %d bytes", buf.Len(), len(golden))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":         nil,
		"not json":      []byte("hello"),
		"wrong format":  []byte(`{"format":"priview-synopsis-v9"}`),
		"empty payload": []byte(`{"format":"priview-synopsis-v2","checksum":"sha256:00"}`),
		"bad checksum": []byte(`{"format":"priview-synopsis-v2","checksum":"sha256:deadbeef",` +
			`"payload":{"format":"priview-synopsis-v1","epsilon":1,"total":2,"views":[{"attrs":[0],"cells":[1,1]}]}}`),
	}
	for name, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Decode(cases["bad checksum"]); !errors.Is(err, ErrChecksum) {
		t.Errorf("bad checksum: err = %v, want ErrChecksum", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "syn.json")
	s := buildSyn(4)
	if err := WriteFile(OS{}, path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileFS(OS{}, path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second synopsis; no temp files may remain.
	if err := WriteFile(OS{}, path, buildSyn(5)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the snapshot", len(entries))
	}
}

func TestStoreRotation(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if _, err := st.Save(buildSyn(i)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := st.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("store kept %d snapshots, want 3: %v", len(names), names)
	}
	if names[0] != "snapshot-000005.json" {
		t.Fatalf("newest = %s", names[0])
	}
	res, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(res.Path) != "snapshot-000005.json" {
		t.Fatalf("loaded %s, want newest", res.Path)
	}
	if res.Report == nil || !res.Report.OK() {
		t.Fatalf("audit report: %v", res.Report)
	}
}

func TestStoreQuarantinesCorruptAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := buildSyn(7)
	if _, err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	newest, err := st.Save(buildSyn(8))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot: truncate it mid-payload (a torn
	// write that escaped the atomic protocol, e.g. disk corruption).
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := st.Load()
	if err != nil {
		t.Fatalf("Load failed despite a good older snapshot: %v", err)
	}
	if filepath.Base(res.Path) != "snapshot-000001.json" {
		t.Fatalf("loaded %s, want the older good snapshot", res.Path)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined %v, want exactly the corrupt file", res.Quarantined)
	}
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Fatalf("corrupt file not renamed aside: %v", err)
	}
	if !marginal.Equal(want.Query([]int{0, 1}), res.Synopsis.Query([]int{0, 1}), 1e-9) {
		t.Error("fallback synopsis differs from what was saved")
	}
	// A second load must not re-trip over the quarantined file.
	if res2, err := st.Load(); err != nil || len(res2.Quarantined) != 0 {
		t.Fatalf("second load: res=%+v err=%v", res2, err)
	}
}

func TestStoreAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	path, err := st.Save(buildSyn(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(); err == nil {
		t.Fatal("Load succeeded with only a corrupt snapshot")
	}
}

// FuzzSnapshotLoad asserts Decode never panics, whatever the bytes.
func FuzzSnapshotLoad(f *testing.F) {
	s := buildSyn(6)
	var v2, v1 bytes.Buffer
	if err := Write(&v2, s); err != nil {
		f.Fatal(err)
	}
	if err := s.Save(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add([]byte(`{"format":"priview-synopsis-v2","checksum":"sha256:ff","payload":{}}`))
	f.Add([]byte("}{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		syn, err := Decode(data)
		if err == nil && syn == nil {
			t.Fatal("nil synopsis without error")
		}
	})
}
