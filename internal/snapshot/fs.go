package snapshot

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"priview/internal/core"
)

// File is the write surface of a snapshot temp file.
type File interface {
	io.Writer
	// Sync flushes the file contents to stable storage.
	Sync() error
	Close() error
	// Name returns the file's path.
	Name() string
}

// FS abstracts the filesystem operations the durability layer needs.
// Production uses OS (the real filesystem); the chaos package wraps an
// FS to inject short writes, failed renames and bit flips, proving the
// detection and fallback paths work.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	// CreateTemp creates a new unique file in dir for the atomic write
	// protocol (see os.CreateTemp for the pattern syntax).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making a completed rename
	// durable (without it a crash can roll the directory entry back).
	SyncDir(dir string) error
}

// OS is the real-filesystem FS.
type OS struct{}

func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFile writes the synopsis to path as a v2 snapshot using the
// atomic protocol: serialize into a temp file in the same directory,
// fsync it, rename it over the target, then fsync the directory. A
// crash at any point leaves either the old complete file or the new
// complete file — never a torn snapshot — and any torn temp remnant is
// ignored by loads and cleaned up on the next write.
func WriteFile(fsys FS, path string, s *core.Synopsis) (err error) {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: creating %s: %w", dir, err)
	}
	tmp, err := fsys.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			// Best-effort cleanup; the temp file is inert either way.
			_ = fsys.Remove(tmpName)
		}
	}()
	if err = Write(tmp, s); err != nil {
		//lint:ignore errdiscard the write error is what matters
		_ = tmp.Close()
		return err
	}
	if err = tmp.Sync(); err != nil {
		//lint:ignore errdiscard the sync error is what matters
		_ = tmp.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmpName, err)
	}
	if err = fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("snapshot: publishing %s: %w", path, err)
	}
	if err = fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: syncing directory %s: %w", dir, err)
	}
	return nil
}

// ReadFileFS loads and verifies the snapshot at path via fsys.
func ReadFileFS(fsys FS, path string) (*core.Synopsis, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading %s: %w", path, err)
	}
	return Decode(raw)
}
