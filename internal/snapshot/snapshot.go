// Package snapshot is the durability layer for published synopses. A
// v2 snapshot is a JSON container wrapping the v1 synopsis document
// with a SHA-256 checksum, so torn writes and bit rot are detected at
// load time instead of silently serving corrupted marginals. Writes
// are atomic (temp file + fsync + rename + directory fsync), and the
// Store keeps a bounded history of snapshots, quarantining corrupt
// files and falling back to the newest verifiable one.
//
// Bare v1 files (written by core.Save before the container existed)
// are still readable; they simply carry no checksum, so only the
// structural and audit checks protect them.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"priview/internal/core"
)

// FormatV2 identifies the checksummed container.
const FormatV2 = "priview-synopsis-v2"

// ErrChecksum reports that a v2 snapshot's payload does not hash to its
// declared checksum — the file was torn, bit-flipped or hand-edited.
var ErrChecksum = errors.New("snapshot: checksum mismatch")

// ErrFormat reports bytes that are neither a v2 container nor a bare v1
// synopsis.
var ErrFormat = errors.New("snapshot: unrecognized format")

// envelope is the on-disk v2 container. Payload holds the complete v1
// synopsis document verbatim; Checksum is "sha256:<hex>" over the
// JSON-compacted payload bytes, so checksums are stable under the
// whitespace differences JSON round-trips may introduce while still
// covering every semantic byte.
type envelope struct {
	Format   string          `json:"format"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// checksum returns "sha256:<hex>" over the compacted payload.
func checksum(payload []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return "", fmt.Errorf("snapshot: payload is not valid JSON: %w", err)
	}
	sum := sha256.Sum256(compact.Bytes())
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Write serializes the synopsis as a v2 checksummed snapshot. The
// synopsis is validated by core.Save's rules first (non-finite cells
// are rejected), so a checksum is only ever computed over a
// publishable payload.
func Write(w io.Writer, s *core.Synopsis) error {
	var payload bytes.Buffer
	if err := s.Save(&payload); err != nil {
		return err
	}
	sum, err := checksum(payload.Bytes())
	if err != nil {
		return err
	}
	env := envelope{Format: FormatV2, Checksum: sum, Payload: json.RawMessage(bytes.TrimSpace(payload.Bytes()))}
	enc := json.NewEncoder(w)
	return enc.Encode(&env)
}

// Read loads a snapshot: a v2 container (checksum verified, then the
// payload goes through core.Load's strict validation) or a bare v1
// synopsis for backward compatibility. Arbitrary bytes produce an
// error, never a panic.
func Read(r io.Reader) (*core.Synopsis, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading: %w", err)
	}
	return Decode(raw)
}

// Decode is Read over an in-memory byte slice.
func Decode(raw []byte) (*core.Synopsis, error) {
	var sniff struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(raw, &sniff); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	switch sniff.Format {
	case FormatV2:
		var env envelope
		if err := json.Unmarshal(raw, &env); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if len(env.Payload) == 0 {
			return nil, fmt.Errorf("%w: empty payload", ErrFormat)
		}
		sum, err := checksum(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("%w: unhashable payload: %v", ErrChecksum, err)
		}
		if sum != env.Checksum {
			return nil, fmt.Errorf("%w: payload hashes to %s, header declares %s", ErrChecksum, sum, env.Checksum)
		}
		return core.Load(bytes.NewReader(env.Payload))
	case core.SynopsisFormatV1:
		return core.Load(bytes.NewReader(raw))
	default:
		return nil, fmt.Errorf("%w: format %q", ErrFormat, sniff.Format)
	}
}
