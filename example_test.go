package priview_test

import (
	"fmt"

	"priview"
)

// Example demonstrates the complete release workflow: wrap records,
// plan a view set, build the private synopsis, query a marginal.
func Example() {
	// Four binary attributes; attributes 0 and 1 always co-occur.
	records := make([]uint64, 0, 1000)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			records = append(records, 0b0011)
		} else {
			records = append(records, 0b1100)
		}
	}
	data := priview.NewDataset(4, records)

	design := priview.BestDesign(4, 4, 2, 1) // one view covering everything
	syn := priview.Build(data, priview.Config{Epsilon: 5, Design: design}, 7)

	table := syn.Query([]int{0, 1})
	closeTo1000 := table.Total() > 950 && table.Total() < 1050
	fmt.Printf("marginal over {0,1} has %d cells; total within 5%% of N: %v\n",
		table.Size(), closeTo1000)
	// Output:
	// marginal over {0,1} has 4 cells; total within 5% of N: true
}

// ExamplePlanDesign shows the §4.5 planning step: for Kosarak-scale
// parameters the planner keeps triple coverage at ε=1 and falls back to
// pair coverage at ε=0.1.
func ExamplePlanDesign() {
	rich := priview.PlanDesign(32, 900000, 1.0, 1)
	poor := priview.PlanDesign(32, 900000, 0.1, 1)
	fmt.Printf("eps=1.0: t=%d\neps=0.1: t=%d\n", rich.Design.T, poor.Design.T)
	// Output:
	// eps=1.0: t=3
	// eps=0.1: t=2
}

// ExampleBestDesign shows the optimal construction for d=32: the
// GF(2)-subspace cover reproducing the paper's C2(8,20).
func ExampleBestDesign() {
	dg := priview.BestDesign(32, 8, 2, 1)
	fmt.Println(dg.Name())
	// Output:
	// C2(8,20)
}
