package priview_test

import (
	"math"
	"testing"

	"priview"
	"priview/internal/dataset/synth"
)

// TestEndToEnd drives the full public API exactly as a downstream user
// would: plan, build, query, evaluate.
func TestEndToEnd(t *testing.T) {
	data := synth.Kosarak(100000, 1)
	plan := priview.PlanDesign(data.Dim(), data.Len(), 1.0, 7)
	if plan.Design == nil {
		t.Fatal("no design planned")
	}
	syn := priview.Build(data, priview.Config{Epsilon: 1.0, Design: plan.Design}, 42)

	attrs := []int{1, 9, 18, 27}
	got := syn.Query(attrs)
	truth := data.Marginal(attrs)
	nerr := priview.L2Error(got, truth) / float64(data.Len())
	if nerr > 0.05 {
		t.Errorf("normalized error %v too large for N=100k, eps=1", nerr)
	}
	js := priview.JSDivergence(got, truth)
	if math.IsNaN(js) || js < 0 || js > math.Log(2) {
		t.Errorf("JS divergence %v out of range", js)
	}
}

func TestPublicDatasetConstruction(t *testing.T) {
	data := priview.NewDataset(4, []uint64{0b1010, 0b0110, 0b1111})
	if data.Dim() != 4 || data.Len() != 3 {
		t.Fatalf("dim=%d len=%d", data.Dim(), data.Len())
	}
	m := data.Marginal([]int{1, 3})
	if m.Total() != 3 {
		t.Errorf("marginal total = %v", m.Total())
	}
}

func TestBestDesignPublic(t *testing.T) {
	dg := priview.BestDesign(32, 8, 2, 3)
	if dg.W() != 20 {
		t.Errorf("w = %d, want 20 (the paper's C_2(8,20))", dg.W())
	}
	if err := dg.Verify(); err != nil {
		t.Error(err)
	}
}

func TestNoisyCountPublic(t *testing.T) {
	data := synth.MSNBC(10000, 2)
	n := priview.NoisyCount(data, 0.01, 5)
	if n < 1 {
		t.Errorf("noisy count %v below floor", n)
	}
}

func TestFromViewsPublic(t *testing.T) {
	data := synth.MSNBC(5000, 3)
	dg := priview.BestDesign(9, 6, 2, 1)
	views := make([]*priview.Table, dg.W())
	for i, b := range dg.Blocks {
		views[i] = data.Marginal(b)
	}
	syn := priview.FromViews(views, priview.Config{Epsilon: 1, Design: dg})
	got := syn.Query([]int{0, 5})
	truth := data.Marginal([]int{0, 5})
	if priview.L2Error(got, truth) > 1 {
		t.Errorf("noise-free FromViews query error %v", priview.L2Error(got, truth))
	}
}

func TestDifferentSeedsDifferentNoise(t *testing.T) {
	data := synth.MSNBC(5000, 4)
	dg := priview.BestDesign(9, 6, 2, 1)
	a := priview.Build(data, priview.Config{Epsilon: 1, Design: dg}, 1)
	b := priview.Build(data, priview.Config{Epsilon: 1, Design: dg}, 2)
	qa := a.Query([]int{0, 1})
	qb := b.Query([]int{0, 1})
	same := true
	for i := range qa.Cells {
		if qa.Cells[i] != qb.Cells[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("independent releases produced identical noise")
	}
}

func TestReconstructionMethodSelection(t *testing.T) {
	data := synth.MSNBC(5000, 5)
	dg := priview.BestDesign(9, 4, 2, 1)
	for _, m := range []priview.ReconstructMethod{priview.CME, priview.CLN, priview.CLP} {
		syn := priview.Build(data, priview.Config{Epsilon: 1, Design: dg, Method: m}, 6)
		got := syn.Query([]int{0, 4, 8})
		if got.Size() != 8 {
			t.Errorf("method %v: size %d", m, got.Size())
		}
	}
}

func TestWorkloadDesignZeroCoverageError(t *testing.T) {
	data := synth.Kosarak(30000, 6)
	workload := [][]int{{0, 5, 12, 20}, {3, 8, 25}, {1, 30, 31}}
	dg, err := priview.WorkloadDesign(32, 8, workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Without noise, workload marginals must be exact (fully covered).
	syn := priview.Build(data, priview.Config{Design: dg, NoNoise: true}, 2)
	for _, w := range workload {
		got := syn.Query(w)
		truth := data.Marginal(w)
		if priview.L2Error(got, truth) > 1e-6 {
			t.Errorf("workload set %v has coverage error %v", w, priview.L2Error(got, truth))
		}
	}
}
