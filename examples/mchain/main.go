// Mchain: how reconstruction quality depends on the correlation
// structure of the data (the paper's Fig. 5 scenario). Order-i Markov
// chains couple i+1 consecutive attributes; a pair-covering design
// guarantees pairs only, so higher orders stress the maximum-entropy
// step's ability to recover joint structure it never saw directly.
package main

import (
	"fmt"

	"priview"
	"priview/internal/dataset/synth"
)

func main() {
	const (
		d   = 64
		n   = 100000
		eps = 1.0
		k   = 6
	)
	design := priview.BestDesign(d, 8, 2, 1) // C2(8,72): the affine/spread optimum
	fmt.Printf("markov-chain stress test: d=%d, N=%d, ε=%g, design %s\n",
		d, n, eps, design.Name())
	fmt.Printf("querying all %d-way marginals over consecutive attributes\n\n", k)

	fmt.Printf("%6s %18s\n", "order", "mean norm. L2 err")
	for order := 1; order <= 7; order++ {
		data := synth.MChain(order, n, int64(order))
		syn := priview.Build(data, priview.Config{Epsilon: eps, Design: design}, int64(100+order))
		var sum float64
		count := 0
		for start := 0; start+k <= d; start += 3 { // subsample for speed
			attrs := make([]int, k)
			for i := range attrs {
				attrs[i] = start + i
			}
			truth := data.Marginal(attrs)
			sum += priview.L2Error(syn.Query(attrs), truth) / float64(n)
			count++
		}
		fmt.Printf("%6d %18.5f\n", order, sum/float64(count))
	}
	fmt.Println("\nexpected shape (paper §5.5): order 3 is the hardest — four attributes")
	fmt.Println("are strongly coupled but only pairs are covered; higher orders spread")
	fmt.Println("the dependency thin and errors shrink again.")
}
