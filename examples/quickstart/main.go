// Quickstart: the smallest complete use of the priview public API —
// build a differentially private synopsis of a binary dataset and
// reconstruct a few marginals from it.
package main

import (
	"fmt"

	//lint:ignore randsource fixed-seed toy data generation for the demo; the records are public inputs, not a DP mechanism
	"math/rand"

	"priview"
)

func main() {
	// A toy dataset: 50,000 users over 16 binary attributes, where
	// attribute pairs (0,1) and (2,3) are strongly correlated.
	const d = 16
	rng := rand.New(rand.NewSource(7))
	records := make([]uint64, 50000)
	for i := range records {
		var r uint64
		if rng.Float64() < 0.4 {
			r |= 0b0011 // attrs 0,1 together
		}
		if rng.Float64() < 0.25 {
			r |= 0b1100 // attrs 2,3 together
		}
		for a := 4; a < d; a++ {
			if rng.Float64() < 0.2 {
				r |= 1 << uint(a)
			}
		}
		records[i] = r
	}
	data := priview.NewDataset(d, records)

	// 1. Plan a view set for this dimension, size and budget.
	const eps = 1.0
	plan := priview.PlanDesign(d, data.Len(), eps, 1)
	fmt.Printf("planned design: %s (predicted noise error %.5f)\n",
		plan.Design.Name(), plan.NoiseError)

	// 2. Build the private synopsis — the only step that reads the data.
	syn := priview.Build(data, priview.Config{Epsilon: eps, Design: plan.Design}, 42)

	// 3. Query any k-way marginals, and compare with the truth.
	for _, attrs := range [][]int{{0, 1}, {2, 3}, {0, 2, 5, 9}} {
		got := syn.Query(attrs)
		truth := data.Marginal(attrs)
		fmt.Printf("\nmarginal over %v (normalized L2 error %.5f):\n",
			attrs, priview.L2Error(got, truth)/float64(data.Len()))
		for cell, v := range got.Cells {
			fmt.Printf("  cell %0*b: private %8.1f   true %8.0f\n",
				len(attrs), cell, v, truth.Cells[cell])
		}
	}
}
