// Workload: view selection tailored to a known query workload. When the
// analyst's marginals of interest are known in advance, WorkloadDesign
// packs them into views directly — those marginals then have zero
// coverage error, trading away the blanket t-subset guarantee of a
// covering design. Compares both strategies on the same queries.
package main

import (
	"fmt"

	"priview"
	"priview/internal/dataset/synth"
)

func main() {
	data := synth.Kosarak(150000, 5)
	const eps = 1.0
	n := float64(data.Len())

	// The analyst declares the cross-tabs they will publish.
	workload := [][]int{
		{0, 1, 2, 3},     // top pages
		{0, 8, 9},        // front page x sports
		{5, 13, 21, 29},  // one page per popularity tier
		{16, 17, 18, 19}, // a mid-tier cluster
		{2, 10, 26, 31},  // scattered pages
	}

	tailored, err := priview.WorkloadDesign(32, 8, workload, 1)
	if err != nil {
		panic(err)
	}
	generic := priview.BestDesign(32, 8, 2, 1)
	fmt.Printf("workload-tailored design: %d views of ≤8 pages\n", tailored.W())
	fmt.Printf("generic pair-covering design: %s\n\n", generic.Name())

	synT := priview.Build(data, priview.Config{Epsilon: eps, Design: tailored}, 11)
	synG := priview.Build(data, priview.Config{Epsilon: eps, Design: generic}, 12)

	fmt.Printf("%-18s %14s %14s\n", "marginal", "tailored", "generic")
	var sumT, sumG float64
	for _, q := range workload {
		truth := data.Marginal(q)
		errT := priview.L2Error(synT.Query(q), truth) / n
		errG := priview.L2Error(synG.Query(q), truth) / n
		sumT += errT
		sumG += errG
		fmt.Printf("%-18s %14.5f %14.5f\n", fmt.Sprint(q), errT, errG)
	}
	fmt.Printf("%-18s %14.5f %14.5f\n", "mean", sumT/float64(len(workload)), sumG/float64(len(workload)))

	// The flip side: a marginal outside the workload leans on maxent
	// reconstruction under the tailored design, while the covering
	// design guarantees pair coverage everywhere.
	offWorkload := []int{4, 11, 22, 30}
	truth := data.Marginal(offWorkload)
	fmt.Printf("\noff-workload %v:   tailored %.5f   generic %.5f\n",
		offWorkload,
		priview.L2Error(synT.Query(offWorkload), truth)/n,
		priview.L2Error(synG.Query(offWorkload), truth)/n)
}
