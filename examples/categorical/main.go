// Categorical: the §4.7 extension — private marginal release for a
// survey with non-binary answers. Demonstrates schema-driven view
// selection under a cell budget, the value-neighbor Ripple correction,
// and maximum-entropy reconstruction over mixed-cardinality marginals.
package main

import (
	"fmt"

	"priview/internal/categorical"
	"priview/internal/noise"
)

func main() {
	// A 10-question survey: answers have 2-5 options each.
	schema := categorical.Schema{5, 3, 4, 2, 3, 5, 2, 4, 3, 2}
	data := categorical.SynthSurvey(schema, 120000, 42)
	const eps = 1.0

	lo, hi := categorical.RecommendedCellBudget(3)
	fmt.Printf("survey release: %d questions, N=%d, ε=%g\n", data.Dim(), data.Len(), eps)
	fmt.Printf("§4.7 guideline for b≈3: views of %d-%d cells\n", lo, hi)

	views := categorical.GreedyPairViews(schema, 200, noise.NewStream(1))
	fmt.Printf("chosen %d views (budget 200 cells):\n", len(views))
	for _, v := range views {
		cells := 1
		for _, a := range v {
			cells *= schema[a]
		}
		fmt.Printf("  questions %v (%d cells)\n", v, cells)
	}

	syn := categorical.BuildSynopsis(data, categorical.Config{
		Epsilon: eps, Views: views,
	}, noise.NewStream(7))

	// A cross-tab an analyst would ask for: questions 0 (5 options) ×
	// 3 (2 options).
	q := []int{0, 3}
	got := syn.Query(q)
	truth := data.Marginal(q)
	fmt.Printf("\ncross-tab Q0 × Q3 (normalized L2 error %.5f):\n",
		categorical.L2Distance(got, truth)/float64(data.Len()))
	fmt.Printf("%8s  %10s  %10s\n", "answers", "private", "true")
	for idx := range got.Cells {
		vals := got.Values(idx)
		fmt.Printf("  (%d, %d)  %10.0f  %10.0f\n", vals[0], vals[1], got.Cells[idx], truth.Cells[idx])
	}

	// A three-way marginal across views: reconstructed by maximum
	// entropy from pairwise coverage.
	q3 := []int{0, 4, 7}
	got3 := syn.Query(q3)
	truth3 := data.Marginal(q3)
	fmt.Printf("\nthree-way marginal Q0 × Q4 × Q7 (36 cells, not covered by one view):\n")
	fmt.Printf("  normalized L2 error: %.5f\n",
		categorical.L2Distance(got3, truth3)/float64(data.Len()))
}
