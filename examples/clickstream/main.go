// Clickstream: the paper's motivating workload — release marginal
// statistics of a web click-stream (which page sets are visited
// together) without exposing any individual's browsing history. Uses a
// Kosarak-like d=32 dataset and compares PriView against the Direct
// method across marginal sizes.
package main

import (
	"fmt"

	"priview"
	"priview/internal/baselines"
	"priview/internal/dataset/synth"
	"priview/internal/noise"
)

func main() {
	// 200k sessions over the 32 most popular pages of a news portal.
	data := synth.Kosarak(200000, 3)
	n := float64(data.Len())
	const eps = 1.0

	plan := priview.PlanDesign(data.Dim(), data.Len(), eps, 1)
	fmt.Printf("click-stream release: d=%d, N=%d, ε=%g\n", data.Dim(), data.Len(), eps)
	fmt.Printf("planned design: %s — %d views of up to %d pages\n\n",
		plan.Design.Name(), plan.Design.W(), plan.Design.L)

	syn := priview.Build(data, priview.Config{Epsilon: eps, Design: plan.Design}, 99)

	// An analyst asks: how often are the sports pages (8,9) visited
	// with the front page (0)?
	attrs := []int{0, 8, 9}
	got := syn.Query(attrs)
	truth := data.Marginal(attrs)
	fmt.Println("visits to front page (a0) x sports pages (a8, a9):")
	labels := []string{"none", "front only", "a8 only", "front+a8",
		"a9 only", "front+a9", "a8+a9", "all three"}
	for cell, v := range got.Cells {
		fmt.Printf("  %-11s private %9.0f   true %9.0f\n", labels[cell], v, truth.Cells[cell])
	}

	// Accuracy profile vs. the Direct method for k = 2, 4, 6, 8.
	fmt.Println("\nmean normalized L2 error over 20 random page sets:")
	fmt.Printf("%4s %12s %12s %10s\n", "k", "PriView", "Direct", "ratio")
	rng := noise.NewStream(5)
	for _, k := range []int{2, 4, 6, 8} {
		direct := baselines.NewDirect(data, eps, k, true, noise.NewStream(6))
		var errPV, errDirect float64
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			q := rng.Perm(32)[:k]
			truth := data.Marginal(q)
			errPV += priview.L2Error(syn.Query(q), truth) / n
			errDirect += priview.L2Error(direct.Query(q), truth) / n
		}
		fmt.Printf("%4d %12.5f %12.5f %9.0fx\n",
			k, errPV/trials, errDirect/trials, errDirect/errPV)
	}
}
