// Searchlog: private release of a categorized search log (AOL-like,
// d=45 WordNet-style categories). Demonstrates distribution-level
// evaluation with Jensen–Shannon divergence and reconstruction of
// topic co-occurrence structure that no single view covers.
package main

import (
	"fmt"

	"priview"
	"priview/internal/dataset/synth"
)

func main() {
	data := synth.AOL(150000, 11)
	const eps = 1.0
	fmt.Printf("search-log release: d=%d categories, N=%d users, ε=%g\n",
		data.Dim(), data.Len(), eps)

	plan := priview.PlanDesign(data.Dim(), data.Len(), eps, 2)
	fmt.Printf("planned design: %s (noise error %.5f)\n\n", plan.Design.Name(), plan.NoiseError)
	syn := priview.Build(data, priview.Config{Epsilon: eps, Design: plan.Design}, 7)

	// Cross-topic co-occurrence: categories from different latent
	// topics (see the generator) are unlikely to share a view, so these
	// marginals exercise maximum-entropy reconstruction.
	queries := [][]int{
		{0, 15, 24},         // three topic seeds
		{3, 20, 36, 40},     // four topics
		{8, 12, 28, 36, 44}, // five categories across topics
	}
	fmt.Println("reconstruction quality on cross-topic marginals:")
	fmt.Printf("%-22s %14s %14s\n", "categories", "norm. L2 err", "JS divergence")
	for _, q := range queries {
		got := syn.Query(q)
		truth := data.Marginal(q)
		fmt.Printf("%-22s %14.5f %14.6f\n", fmt.Sprint(q),
			priview.L2Error(got, truth)/float64(data.Len()),
			priview.JSDivergence(got, truth))
	}

	// Conditional structure survives the release: P(category 1 | 0) vs
	// P(category 1 | not 0) from the private synopsis.
	pair := syn.Query([]int{0, 1})
	p1given0 := pair.Cells[3] / (pair.Cells[1] + pair.Cells[3])
	p1givenNot0 := pair.Cells[2] / (pair.Cells[0] + pair.Cells[2])
	truthPair := data.Marginal([]int{0, 1})
	t1given0 := truthPair.Cells[3] / (truthPair.Cells[1] + truthPair.Cells[3])
	t1givenNot0 := truthPair.Cells[2] / (truthPair.Cells[0] + truthPair.Cells[2])
	fmt.Printf("\nP(cat1 | cat0):   private %.3f, true %.3f\n", p1given0, t1given0)
	fmt.Printf("P(cat1 | ¬cat0):  private %.3f, true %.3f\n", p1givenNot0, t1givenNot0)
	fmt.Println("(same-topic categories remain visibly correlated after the private release)")
}
