# PriView build and verification targets. `make check` is the full
# local gate, mirroring what CI runs.

GO ?= go

.PHONY: all build vet lint test race chaos check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# priview-lint is this repo's own static-analysis gate: randsource,
# floatcmp, errdiscard, panicmsg. See DESIGN.md "Static analysis &
# invariants" and `go run ./cmd/priview-lint -list`.
lint:
	$(GO) run ./cmd/priview-lint ./...

test:
	$(GO) test ./...

# The race lane uses -short so the race-enabled run finishes quickly;
# `make test` still runs everything at full size.
race:
	$(GO) test -race -short ./...

# The fault-injection suite: chaos transport + slow-synopsis tests,
# deadline/shedding/panic status mapping, retrying client, graceful
# shutdown. Always under the race detector — the failure paths are
# exactly where concurrency bugs hide. See DESIGN.md §7.
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/server/ ./cmd/priview-serve/

check: build vet lint race chaos
