# PriView build and verification targets. `make check` is the full
# local gate, mirroring what CI runs.

GO ?= go

.PHONY: all build vet lint test race chaos chaos-registry chaos-overload fuzz-short audit bench bench-batch check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# priview-lint is this repo's own static-analysis gate: five AST checks
# (randsource, floatcmp, errdiscard, panicmsg, attrset) plus four
# whole-program dataflow analyzers (privflow, ctxflow, budgetlit,
# hotalloc) driven by the source/sanitizer/sink table in lint.facts.
# See DESIGN.md §11 and `go run ./cmd/priview-lint -list`.
lint:
	$(GO) run ./cmd/priview-lint ./...

# Serial vs parallel wall-clock for the lint driver's load+analyze
# pipeline; reference numbers live in BENCH_lint.json.
lint-bench:
	$(GO) build -o $(or $(TMPDIR),/tmp)/priview-lint-bench ./cmd/priview-lint
	time $(or $(TMPDIR),/tmp)/priview-lint-bench -serial -stats ./...
	time $(or $(TMPDIR),/tmp)/priview-lint-bench -stats ./...

test:
	$(GO) test ./...

# The race lane uses -short so the race-enabled run finishes quickly;
# `make test` still runs everything at full size.
race:
	$(GO) test -race -short ./...

# The fault-injection suite: chaos transport + slow-synopsis tests,
# deadline/shedding/panic status mapping, retrying client, graceful
# shutdown, and the query-cache singleflight/handoff protocol. Always
# under the race detector — the failure paths are exactly where
# concurrency bugs hide. See DESIGN.md §7 and §9.
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/server/ ./internal/qcache/ ./cmd/priview-serve/

# The multi-tenant isolation suite: registry unit tests (breaker
# trip/half-open/recover on a fake clock, bulkheads, LRU eviction with
# cache-warm handoff, reconciler churn), the two-tenant fault-pinning
# proof (torn snapshots / NaN poison / slow loader against one release
# while 12 workers stream the other — zero errors, bounded p99), and
# the hot-reload race. Always under -race. See DESIGN.md §12.
chaos-registry:
	$(GO) test -race ./internal/registry/
	$(GO) test -race -run 'TestRegistryTenantIsolation' ./internal/chaos/
	$(GO) test -race -run 'TestReloadRaceServesCleanly' ./cmd/priview-serve/

# The overload-control suite: admission controller unit tests, the 2×
# overload storm (goodput floor, bounded admitted p99 with a slow
# solver), the mixed single+batch storm over the batched marginal
# route, the client retry-amplification bound, and the greedy-tenant
# fairness proof. Always under -race. Set PRIVIEW_OVERLOAD_REPORT to a
# path to capture the storm's latency partitions as JSON, and
# PRIVIEW_METRICS_SNAPSHOT to capture the mid-storm /metrics scrape
# (CI uploads both as artifacts). See DESIGN.md §13 and §15.
chaos-overload:
	$(GO) test -race ./internal/admission/
	$(GO) test -race -run 'TestOverloadStorm|TestBatchOverloadStorm|TestRetryAmplificationBounded|TestGreedyTenantFairness' ./internal/chaos/

# The query-cache benchmarks (cached vs uncached reconstruction at the
# qcache and HTTP layers) plus the attrset before/after suite (pairwise
# set scan, intersection closure, constraint dedupe, solver hot-loop
# projection — each Old/New pair in the same binary). Reference numbers
# live in BENCH_qcache.json and BENCH_attrset.json; see DESIGN.md §9
# and §10.
BENCHTIME ?= 1s
bench:
	$(GO) test -run='^$$' -bench='BenchmarkQueryCached|BenchmarkQueryUncached' -benchmem -benchtime=$(BENCHTIME) ./internal/qcache/
	$(GO) test -run='^$$' -bench='BenchmarkServerMarginal' -benchmem -benchtime=$(BENCHTIME) ./internal/server/
	$(GO) test -run='^$$' -bench='BenchmarkDedupeIdentical' -benchmem -benchtime=$(BENCHTIME) ./internal/reconstruct/
	$(GO) test -run='^$$' -bench='BenchmarkPairwiseScan|BenchmarkIntersectionClosure|BenchmarkFromAttrs' -benchmem -benchtime=$(BENCHTIME) ./internal/attrset/
	$(GO) test -run='^$$' -bench='BenchmarkHotLoopProjection' -benchmem -benchtime=$(BENCHTIME) ./internal/marginal/

# Batched-query wall-clock: QueryBatch vs the sequential loop on the
# all-3-way workload, both paths in one binary. Reference numbers (and
# the single-CPU-runner caveat) live in BENCH_batch.json.
bench-batch:
	$(GO) test -run='^$$' -bench='BenchmarkAllThreeWaySequential|BenchmarkAllThreeWayBatch' -benchmem -benchtime=$(BENCHTIME) ./internal/core/

# Short coverage-guided fuzz runs over the untrusted-input decoders:
# snapshot container parsing and the audit-over-load pipeline. Ten
# seconds per target keeps the gate fast; longer campaigns can raise
# FUZZTIME. The checked-in seed corpus also runs in plain `make test`.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotLoad -fuzztime=$(FUZZTIME) ./internal/snapshot/
	$(GO) test -run='^$$' -fuzz=FuzzAuditReport -fuzztime=$(FUZZTIME) ./internal/audit/

# Build a small synopsis and run the release auditor over it — an
# end-to-end smoke of the publish gate (`priview build` refuses to
# publish a synopsis the auditor rejects; see DESIGN.md §8).
audit:
	@tmp=$$(mktemp -d) && trap 'rm -rf $$tmp' EXIT && \
	$(GO) run ./cmd/priview generate -dataset msnbc -n 2000 -seed 1 -out $$tmp/data.txt && \
	$(GO) run ./cmd/priview build -in $$tmp/data.txt -eps 1.0 -snapshot -out $$tmp/syn.json && \
	$(GO) run ./cmd/priview audit $$tmp/syn.json

check: build vet lint race chaos chaos-registry chaos-overload fuzz-short audit
