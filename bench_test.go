// Benchmarks regenerating each of the paper's tables and figures (one
// benchmark per artifact, reduced problem sizes so the whole suite runs
// in minutes). cmd/priview-bench runs the same code at any scale and
// prints the rows; EXPERIMENTS.md records paper-vs-measured values from
// full runs.
package priview_test

import (
	"testing"

	"priview/internal/experiments"
)

// benchConfig keeps per-iteration cost low; the shapes (method
// orderings, orders of magnitude) already show at this size.
func benchConfig() experiments.Config {
	return experiments.Config{Queries: 4, Runs: 1, N: 5000, Seed: 1}
}

func BenchmarkTabCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTabCrossover()
	}
}

func BenchmarkTabMidsize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTabMidsize()
	}
}

func BenchmarkTabEll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTabEll()
	}
}

func BenchmarkTabKosarakT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTabKosarakT(int64(i) + 1)
	}
}

func BenchmarkTabCategorical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTabCategorical()
	}
}

func BenchmarkTabRuntime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunTabRuntime(cfg)
	}
}

func BenchmarkFig1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig1(cfg)
		reportMeanError(b, rows, "PriView")
	}
}

func BenchmarkFig2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig2(cfg)
		reportMeanError(b, rows, "PriView")
	}
}

func BenchmarkFig3(b *testing.B) {
	cfg := benchConfig()
	cfg.Queries = 2
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig3(cfg)
		reportMeanError(b, rows, "CME")
	}
}

func BenchmarkFig4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig4(cfg)
		reportMeanError(b, rows, "Ripple1")
	}
}

func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	cfg.N = 3000
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig5(cfg)
		reportMeanError(b, rows, "PriView")
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig6(cfg)
		reportMeanError(b, rows, "")
	}
}

// reportMeanError surfaces the mean normalized L2 error of one method
// as a custom benchmark metric, so accuracy regressions show up next to
// timing ones.
func reportMeanError(b *testing.B, rows []experiments.Row, method string) {
	b.Helper()
	var sum float64
	var n int
	for _, r := range rows {
		if (method == "" || r.Method == method) && r.Metric == "L2n" && r.Note != "no-noise" {
			sum += r.Stats.Mean
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "meanL2n")
	}
}

func BenchmarkAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAblation(cfg)
		reportMeanError(b, rows, "solver/IPF")
	}
}

func BenchmarkCategoricalSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunCategoricalSweep(cfg)
	}
}
