package main

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

var panicmsgAnalyzer = &Analyzer{
	Name: "panicmsg",
	Doc:  `panics in internal/* must carry a "pkg:"-prefixed message so accounting failures are attributable to a subsystem`,
	Run:  runPanicmsg,
}

func runPanicmsg(pass *Pass) {
	if !strings.HasPrefix(pass.Path, "priview/internal/") {
		return
	}
	prefix := pass.Pkg.Name() + ":"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinPanic(pass.Info, call) || len(call.Args) != 1 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			msg, analyzable := panicMessage(pass.Info, arg)
			switch {
			case !analyzable:
				pass.Reportf(call.Pos(),
					"panic value is not a literal message; panic with %q-prefixed text (e.g. fmt.Sprintf(%q, err)) so the failing subsystem is attributable", prefix, prefix+" %v")
			case !strings.HasPrefix(msg, prefix):
				pass.Reportf(call.Pos(),
					"panic message %q must start with %q, the package's attribution prefix", truncate(msg, 40), prefix)
			}
			return true
		})
	}
}

func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// panicMessage extracts the statically known message of a panic
// argument: a string literal/constant, or a fmt.Sprintf/fmt.Errorf call
// whose format string is statically known.
func panicMessage(info *types.Info, arg ast.Expr) (msg string, analyzable bool) {
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil {
			return s, true
		}
		return tv.Value.ExactString(), true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch fn.FullName() {
	case "fmt.Sprintf", "fmt.Errorf", "fmt.Sprint":
		return panicMessage(info, ast.Unparen(call.Args[0]))
	}
	return "", false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
