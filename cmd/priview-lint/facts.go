// The facts store: a checked-in table (lint.facts at the module root)
// declaring the privacy-relevant classification of symbols — raw-data
// sources, noise sanitizers, publish sinks, context-polling scopes and
// privacy-budget positions. The dataflow analyzers refuse to guess:
// a new endpoint or noise primitive must be classified here explicitly,
// which turns "someone remembered to think about privacy" into a
// reviewable diff.
package main

import (
	"fmt"
	"go/types"
	"os"
	"sort"
	"strconv"
	"strings"
)

// factsTable holds the parsed lint.facts declarations, keyed by the
// symbol notation pkgpath.Func / pkgpath.Type.Method (pointer receivers
// written without the star).
type factsTable struct {
	// sources: symbol -> result indices carrying raw (un-noised) data.
	sources map[string][]int
	// sanParams: symbol -> parameter indices (receiver is p0) the call
	// noises in place.
	sanParams map[string][]int
	// sanResults: symbol -> result indices returned already noised.
	sanResults map[string][]int
	// sanPkgs: packages whose every call result counts as noised
	// (internal/noise itself).
	sanPkgs map[string]bool
	// sinks: symbol -> parameter indices that publish their argument.
	sinks map[string][]int
	// sinkTypes: named types (e.g. net/http.ResponseWriter) whose
	// method calls publish every argument.
	sinkTypes map[string]bool
	// ctxScope: packages whose data-dependent loops must poll ctx.
	ctxScope map[string]bool
	// budgetParams: symbol -> parameter indices that are ε/δ positions.
	budgetParams map[string][]int
	// budgetFields: struct fields ("pkg.Type.Field") that are ε/δ
	// positions.
	budgetFields map[string]bool
	// budgetExempt: package path (exact or prefix) -> mandatory reason.
	budgetExempt map[string]string
}

func newFactsTable() *factsTable {
	return &factsTable{
		sources:      make(map[string][]int),
		sanParams:    make(map[string][]int),
		sanResults:   make(map[string][]int),
		sanPkgs:      make(map[string]bool),
		sinks:        make(map[string][]int),
		sinkTypes:    make(map[string]bool),
		ctxScope:     make(map[string]bool),
		budgetParams: make(map[string][]int),
		budgetFields: make(map[string]bool),
		budgetExempt: make(map[string]string),
	}
}

// loadFacts parses the facts file. Every line is
//
//	<kind> <symbol> [p<N>|r<N>...] [-- <reason>]
//
// with '#' comments. Unknown kinds and malformed specs are fatal: a
// typo in the security configuration must not silently weaken it.
func loadFacts(path string) (*factsTable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ft := newFactsTable()
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var reason string
		if body, r, ok := strings.Cut(line, "--"); ok {
			line, reason = strings.TrimSpace(body), strings.TrimSpace(r)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"<kind> <symbol> [specs...]\"", path, i+1)
		}
		kind, sym, specs := fields[0], fields[1], fields[2:]
		params, results, err := parseSpecs(specs)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
		}
		switch kind {
		case "source":
			if len(results) == 0 {
				results = []int{0}
			}
			ft.sources[sym] = results
		case "sanitizer":
			if len(params) == 0 && len(results) == 0 {
				return nil, fmt.Errorf("%s:%d: sanitizer needs at least one p<N> or r<N> spec", path, i+1)
			}
			ft.sanParams[sym] = params
			ft.sanResults[sym] = results
		case "sanitizer-pkg":
			ft.sanPkgs[sym] = true
		case "sink":
			if len(params) == 0 {
				return nil, fmt.Errorf("%s:%d: sink needs at least one p<N> spec", path, i+1)
			}
			ft.sinks[sym] = params
		case "sinktype":
			ft.sinkTypes[sym] = true
		case "ctxflow-scope":
			ft.ctxScope[sym] = true
		case "budget-param":
			if len(params) == 0 {
				return nil, fmt.Errorf("%s:%d: budget-param needs at least one p<N> spec", path, i+1)
			}
			ft.budgetParams[sym] = params
		case "budget-field":
			ft.budgetFields[sym] = true
		case "budget-exempt":
			if reason == "" {
				return nil, fmt.Errorf("%s:%d: budget-exempt requires a reason after --", path, i+1)
			}
			ft.budgetExempt[sym] = reason
		default:
			return nil, fmt.Errorf("%s:%d: unknown fact kind %q", path, i+1, kind)
		}
	}
	return ft, nil
}

func parseSpecs(specs []string) (params, results []int, err error) {
	for _, s := range specs {
		if len(s) < 2 || (s[0] != 'p' && s[0] != 'r') {
			return nil, nil, fmt.Errorf("bad spec %q: want p<N> or r<N>", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 {
			return nil, nil, fmt.Errorf("bad spec %q: want p<N> or r<N>", s)
		}
		if s[0] == 'p' {
			params = append(params, n)
		} else {
			results = append(results, n)
		}
	}
	sort.Ints(params)
	sort.Ints(results)
	return params, results, nil
}

// budgetExemptFor returns the declared exemption reason covering an
// import path, matching exact entries and path prefixes ("priview/
// examples" covers "priview/examples/quickstart").
func (ft *factsTable) budgetExemptFor(path string) (string, bool) {
	if r, ok := ft.budgetExempt[path]; ok {
		return r, true
	}
	for prefix, r := range ft.budgetExempt {
		if strings.HasPrefix(path, prefix+"/") {
			return r, true
		}
	}
	return "", false
}

// funcKey renders the facts-table symbol for a function object:
// pkgpath.Func for package functions, pkgpath.Type.Method for methods
// (pointer receivers written without the star).
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
		// Interface or unnamed receiver: fall back to type notation.
		return types.TypeString(t, nil) + "." + fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// recvTypeKey names a method's receiver type ("net/http.
// ResponseWriter") for sinktype matching, or "" for non-methods.
func recvTypeKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path() + "." + n.Obj().Name()
	}
	return ""
}
