package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// attrsetExempt lists the packages allowed to manipulate attribute
// bitmasks by hand: the canonical implementation itself. Everything
// else must go through internal/attrset so the d < 64 invariant and the
// branch-free kernels live in exactly one place.
var attrsetExempt = map[string]bool{
	"priview/internal/attrset": true,
}

var attrsetAnalyzer = &Analyzer{
	Name: "attrset",
	Doc:  "attribute-set bitmasks must be built with internal/attrset, not hand-rolled 1<<attr accumulation loops",
	Run:  runAttrset,
}

// runAttrset flags the hand-rolled set-building idiom that
// internal/attrset replaced in PR 5: iterating an attribute list
// ([]int) and accumulating, removing, or testing `1 << attr` bits
// against a mask word,
//
//	for _, a := range attrs { m |= 1 << uint(a) }     → attrset.FromAttrs
//	for _, a := range attrs { m &^= 1 << uint(a) }    → Set.Remove
//	for _, a := range attrs { ... m&(1<<uint(a)) ... } → Set.Contains
//
// The shift amount must be the value variable of a range over []int —
// an attribute list. Record-bit packing (dataset.ReadFrom, the one-hot
// encoder, synthetic generators) and cell-index gathers shift by loop
// counters or extracted bits, not by ranged attribute values, and stay
// legal: those words are data records, not attribute sets.
func runAttrset(pass *Pass) {
	if attrsetExempt[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		// Objects that are the value variable of a range over []int —
		// attribute-list iteration.
		attrVars := make(map[types.Object]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.Value == nil {
				return true
			}
			id, ok := rng.Value.(*ast.Ident)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			slice, ok := tv.Type.Underlying().(*types.Slice)
			if !ok {
				return true
			}
			elem, ok := slice.Elem().Underlying().(*types.Basic)
			if !ok || elem.Kind() != types.Int {
				return true
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				attrVars[obj] = true
			}
			return true
		})
		if len(attrVars) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				if n.Tok != token.OR_ASSIGN && n.Tok != token.AND_NOT_ASSIGN {
					return true
				}
				if isAttrShift(pass.Info, attrVars, n.Rhs[0]) {
					hint := "|= 1<<attr; use attrset.FromAttrs or Set.Add"
					if n.Tok == token.AND_NOT_ASSIGN {
						hint = "&^= 1<<attr; use attrset.Set.Remove"
					}
					pass.Reportf(n.Pos(),
						"hand-rolled attribute bitmask (%s) so set algebra and the d<64 invariant stay in internal/attrset", hint)
				}
			case *ast.BinaryExpr:
				if n.Op != token.AND {
					return true
				}
				if isAttrShift(pass.Info, attrVars, n.X) || isAttrShift(pass.Info, attrVars, n.Y) {
					pass.Reportf(n.Pos(),
						"hand-rolled attribute membership test (mask & 1<<attr); use attrset.Set.Contains")
				}
			}
			return true
		})
	}
}

// isAttrShift reports whether e is `1 << a` (with the usual uint
// conversions) where a is a ranged attribute-list variable.
func isAttrShift(info *types.Info, attrVars map[types.Object]bool, e ast.Expr) bool {
	sh, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || sh.Op != token.SHL {
		return false
	}
	if !isConstOne(info, sh.X) {
		return false
	}
	id, ok := unconvert(info, sh.Y).(*ast.Ident)
	if !ok {
		return false
	}
	return attrVars[info.Uses[id]]
}

// unconvert strips conversions (uint(a), uint64(a), ...) and parens
// from e.
func unconvert(info *types.Info, e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = ast.Unparen(call.Args[0])
	}
}

// isConstOne reports whether e is the constant 1, looking through
// conversions (uint64(1), Set(1), ...).
func isConstOne(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return tv.Value.ExactString() == "1"
	}
	return false
}
