// The four dataflow analyzers built on the engine: privflow (noise
// before publish), ctxflow (data-dependent loops poll their context),
// budgetlit (no literal ε/δ outside approved boundaries), and hotalloc
// (no allocations inside loops marked //lint:hot).
package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

var privflowAnalyzer = &Analyzer{
	Name: "privflow",
	Doc:  "no path from raw dataset counts to a publish sink without an intervening internal/noise call (sinks/sanitizers declared in lint.facts)",
	Run:  runPrivflow,
}

func runPrivflow(pass *Pass) {
	if pass.Engine == nil {
		return
	}
	// The interpreter walks loop bodies twice for loop-carried taint, so
	// identical hits deduplicate by position and message.
	type repKey struct {
		pos token.Pos
		msg string
	}
	seen := make(map[repKey]bool)
	pass.Engine.reportInto(pass.pkg, func(pos token.Pos, msg string, trace []string) {
		k := repKey{pos, msg}
		if seen[k] {
			return
		}
		seen[k] = true
		pass.ReportTrace(pos, msg, trace)
	})
}

var ctxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "data-dependent-trip-count loops in solver packages must reach a ctx.Err()/ctx.Done() poll (scope declared in lint.facts)",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	if pass.Engine == nil || !pass.Engine.facts.ctxScope[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			kind, candidate := classifyLoop(pass.Info, loop)
			if !candidate {
				return true
			}
			if pass.Engine.pollsIn(pass.Info, loop.Body) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"%s has a data-dependent trip count but never polls ctx.Err()/ctx.Done(); a cancellation request cannot stop it", kind)
			return true
		})
	}
}

// classifyLoop decides whether a for statement's trip count is
// data-dependent. Range loops are bounded by their operand and counted
// loops by their bound expression; only unbounded forms and counted
// loops with a huge constant cap are candidates.
func classifyLoop(info *types.Info, loop *ast.ForStmt) (string, bool) {
	if loop.Cond == nil {
		return "unbounded for-loop", true
	}
	if loop.Init == nil && loop.Post == nil {
		return "condition-controlled loop", true
	}
	// Three-clause loop: data-dependent only when the bound is a
	// constant large enough that "it finishes quickly" is not an
	// argument (convergence caps like maxIter = 500000).
	const hugeTrip = 1024
	cmp, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		tv, ok := info.Types[side]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		if v, ok := constant.Int64Val(tv.Value); ok && v > hugeTrip {
			return fmt.Sprintf("counted loop with cap %d", v), true
		}
	}
	return "", false
}

var budgetlitAnalyzer = &Analyzer{
	Name: "budgetlit",
	Doc:  "no float ε/δ literals flowing into noise.* or core.Config outside cmd/ flag parsing; budget comes from internal/privacy accounting",
	Run:  runBudgetlit,
}

func runBudgetlit(pass *Pass) {
	if pass.Engine == nil {
		return
	}
	facts := pass.Engine.facts
	if strings.Contains(pass.Path+"/", "/cmd/") {
		return // flag-parsing boundary: literal defaults are the CLI's job
	}
	if _, exempt := facts.budgetExemptFor(pass.Path); exempt {
		return
	}
	for _, f := range pass.Files {
		litVars := literalFloatVars(pass.Info, f)
		isLit := func(e ast.Expr) bool {
			e = ast.Unparen(e)
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				k := tv.Value.Kind()
				return k == constant.Float || k == constant.Int
			}
			if id, ok := e.(*ast.Ident); ok {
				return litVars[pass.Info.ObjectOf(id)]
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn, recv := staticCallee(pass.Info, n)
				if fn == nil {
					return true
				}
				ps, ok := facts.budgetParams[funcKey(fn)]
				if !ok {
					return true
				}
				shift := 0
				if recv != nil {
					shift = 1
				}
				for _, pi := range ps {
					ai := pi - shift
					if ai < 0 || ai >= len(n.Args) {
						continue
					}
					if isLit(n.Args[ai]) {
						pass.Reportf(n.Args[ai].Pos(),
							"literal privacy budget passed to %s; ε/δ must come from internal/privacy accounting", funcKey(fn))
					}
				}
			case *ast.CompositeLit:
				tname := namedTypeKey(pass.Info.Types[n].Type)
				if tname == "" {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !facts.budgetFields[tname+"."+key.Name] {
						continue
					}
					if isLit(kv.Value) {
						pass.Reportf(kv.Value.Pos(),
							"literal privacy budget in %s.%s; ε/δ must come from internal/privacy accounting", tname, key.Name)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					fieldKey := selectedFieldKey(pass.Info, sel)
					if fieldKey == "" || !facts.budgetFields[fieldKey] {
						continue
					}
					if isLit(n.Rhs[i]) {
						pass.Reportf(n.Rhs[i].Pos(),
							"literal privacy budget assigned to %s; ε/δ must come from internal/privacy accounting", fieldKey)
					}
				}
			}
			return true
		})
	}
}

// literalFloatVars collects local variables whose initialization is a
// bare float literal — `eps := 1.0` — so one level of indirection does
// not hide a literal budget. A variable written again after its
// definition (an accumulator like `total := 0.0; total += x`) is no
// longer a literal and is dropped.
func literalFloatVars(info *types.Info, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if bl, ok := ast.Unparen(as.Rhs[i]).(*ast.BasicLit); ok &&
				(bl.Kind == token.FLOAT || bl.Kind == token.INT) {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if n.Tok == token.DEFINE && out[obj] {
					continue // the defining literal assignment itself
				}
				delete(out, obj)
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				delete(out, info.ObjectOf(id))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					delete(out, info.ObjectOf(id))
				}
			}
		}
		return true
	})
	return out
}

// namedTypeKey renders "pkgpath.Type" for a (possibly pointered) named
// type, or "".
func namedTypeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path() + "." + n.Obj().Name()
	}
	return ""
}

// selectedFieldKey renders "pkgpath.Type.Field" for a field selection,
// or "".
func selectedFieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	tname := namedTypeKey(s.Recv())
	if tname == "" {
		return ""
	}
	return tname + "." + sel.Sel.Name
}

var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make/append/map-insert/closure/interface-boxing inside loops marked //lint:hot",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	for _, f := range pass.Files {
		hotLines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == "lint:hot" {
					hotLines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(hotLines) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			line := pass.Fset.Position(n.Pos()).Line
			if !hotLines[line] && !hotLines[line-1] {
				return true
			}
			checkHotBody(pass, body)
			return true
		})
	}
}

// checkHotBody flags every allocation or boxing site inside a hot loop
// body.
func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make", "new", "append":
						pass.Reportf(n.Pos(), "%s inside a //lint:hot loop allocates; hoist the buffer out of the loop", id.Name)
					}
					return true
				}
			}
			// Conversion to an interface type boxes the operand.
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
				if types.IsInterface(tv.Type) && len(n.Args) == 1 {
					if atv, ok := pass.Info.Types[n.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
						pass.Reportf(n.Pos(), "conversion to interface inside a //lint:hot loop boxes its operand (allocates)")
					}
				}
				return true
			}
			checkBoxingArgs(pass, n)
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "composite literal inside a //lint:hot loop allocates; hoist it out of the loop")
			return false
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure inside a //lint:hot loop allocates; hoist it out of the loop")
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := pass.Info.Types[ix.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(lhs.Pos(), "map insert inside a //lint:hot loop may allocate; precompute the table outside the loop")
					}
				}
			}
		}
		return true
	})
}

// checkBoxingArgs flags concrete values passed to interface-typed
// parameters inside hot loops — each such argument escapes to the heap.
func checkBoxingArgs(pass *Pass, call *ast.CallExpr) {
	fn, recv := staticCallee(pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	_ = recv
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv, ok := pass.Info.Types[arg]
		if !ok || atv.Type == nil || types.IsInterface(atv.Type) {
			continue
		}
		if b, ok := atv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes into interface parameter %s of %s inside a //lint:hot loop (allocates)",
			pt.String(), funcKey(fn))
	}
}
