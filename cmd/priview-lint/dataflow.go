// The dataflow engine: whole-program function summaries over every
// loaded priview/... package plus a taint abstract interpreter on the
// lattice raw → noised → published. Phase A builds per-function
// summaries bottom-up in package topological order (with a fixpoint
// inside each package for intra-package recursion); Phase B re-analyzes
// the packages under review with the final summaries and reporting
// enabled. The analysis is deliberately optimistic about code it cannot
// see — unknown callees neither produce raw data nor publish it — so
// every finding is rooted at a declared fact from lint.facts, and the
// way to extend coverage is to classify more symbols there.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// provenance is one hop of a taint trace, linked from the latest hop
// back to the raw source.
type provenance struct {
	desc string
	pos  token.Pos
	prev *provenance
}

// trace renders the hop chain source-first.
func (p *provenance) trace(fset *token.FileSet) []string {
	var out []string
	for q := p; q != nil; q = q.prev {
		if q.pos.IsValid() {
			out = append(out, fmt.Sprintf("%s at %s", q.desc, fset.Position(q.pos)))
		} else {
			out = append(out, q.desc)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// tval is the abstract value: possibly-raw (with provenance), noised
// (passed through internal/noise), derived from enclosing-function
// parameters (bitset), and/or a set of possible function values.
type tval struct {
	raw    *provenance
	noised bool
	params uint64
	funcs  []*funcSummary
}

func (v tval) tainted() bool { return v.raw != nil || v.params != 0 }

func mergeVal(a, b tval) tval {
	out := tval{params: a.params | b.params}
	out.raw = a.raw
	if out.raw == nil {
		out.raw = b.raw
	}
	out.noised = (a.noised || b.noised) && out.raw == nil
	out.funcs = a.funcs
	for _, f := range b.funcs {
		found := false
		for _, g := range out.funcs {
			if f == g {
				found = true
			}
		}
		if !found {
			out.funcs = append(append([]*funcSummary(nil), out.funcs...), f)
		}
	}
	return out
}

// sinkRecord says "this function hands the given parameter to a publish
// sink", with the call chain from the function down to the sink.
type sinkRecord struct {
	sink string
	via  []string
}

// funcSummary is the interprocedural contract of one function.
type funcSummary struct {
	name string // display symbol for traces

	resultRaw    []*provenance // per result: raw independent of arguments
	resultNoised []bool        // per result: definitely noised
	flows        []uint64      // per result: params flowing through unsanitized
	sanitizes    uint64        // params the call leaves noised (in-place)
	argRaw       map[int]*provenance
	argFlows     map[int]uint64 // param mutated with data from other params
	sinks        map[int]*sinkRecord
	polls        bool // reaches a ctx.Err()/ctx.Done() poll
}

func newSummary(name string, nresults int) *funcSummary {
	return &funcSummary{
		name:         name,
		resultRaw:    make([]*provenance, nresults),
		resultNoised: make([]bool, nresults),
		flows:        make([]uint64, nresults),
		argRaw:       make(map[int]*provenance),
		argFlows:     make(map[int]uint64),
		sinks:        make(map[int]*sinkRecord),
	}
}

// equalShape compares the caller-visible parts of two summaries; the
// package fixpoint loop stops when no summary changes shape.
func equalShape(a, b *funcSummary) bool {
	if len(a.resultRaw) != len(b.resultRaw) || a.sanitizes != b.sanitizes || a.polls != b.polls {
		return false
	}
	for i := range a.resultRaw {
		if (a.resultRaw[i] != nil) != (b.resultRaw[i] != nil) ||
			a.resultNoised[i] != b.resultNoised[i] || a.flows[i] != b.flows[i] {
			return false
		}
	}
	if len(a.sinks) != len(b.sinks) || len(a.argRaw) != len(b.argRaw) || len(a.argFlows) != len(b.argFlows) {
		return false
	}
	for k := range a.sinks {
		if b.sinks[k] == nil {
			return false
		}
	}
	for k := range a.argRaw {
		if b.argRaw[k] == nil {
			return false
		}
	}
	for k, v := range a.argFlows {
		if b.argFlows[k] != v {
			return false
		}
	}
	return true
}

// funcUnit is one function declaration the engine can analyze.
type funcUnit struct {
	pkg  *lintPackage
	decl *ast.FuncDecl
	obj  *types.Func
}

// engine owns the facts, the summaries, and the loaded program.
type engine struct {
	facts     *factsTable
	fset      *token.FileSet
	pkgs      []*lintPackage // dependencies before dependents
	units     map[*lintPackage][]funcUnit
	summaries map[*types.Func]*funcSummary
}

// newEngine builds function summaries for every package in pkgs, which
// must be topologically ordered (loader.allInOrder provides this).
func newEngine(facts *factsTable, fset *token.FileSet, pkgs []*lintPackage) *engine {
	e := &engine{
		facts:     facts,
		fset:      fset,
		pkgs:      pkgs,
		units:     make(map[*lintPackage][]funcUnit),
		summaries: make(map[*types.Func]*funcSummary),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				e.units[pkg] = append(e.units[pkg], funcUnit{pkg: pkg, decl: fd, obj: obj})
			}
		}
	}
	// Phase A: summaries bottom-up; fixpoint within each package covers
	// intra-package (including mutual) recursion. The iteration cap is a
	// backstop — the lattice is finite and monotone, so in practice two
	// or three rounds converge.
	for _, pkg := range pkgs {
		for round := 0; round < 8; round++ {
			changed := false
			for _, u := range e.units[pkg] {
				old := e.summaries[u.obj]
				s := e.analyze(u, nil)
				e.summaries[u.obj] = s
				if old == nil || !equalShape(old, s) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return e
}

// reportInto re-analyzes every function of pkg with reporting enabled —
// Phase B for the privflow analyzer.
func (e *engine) reportInto(pkg *lintPackage, report func(pos token.Pos, msg string, trace []string)) {
	for _, u := range e.units[pkg] {
		e.analyze(u, report)
	}
}

// analyze runs the abstract interpreter over one function body and
// returns its summary. When report is non-nil, raw-into-sink hits are
// reported; parameter-into-sink hits are always recorded in the summary
// for callers.
func (e *engine) analyze(u funcUnit, report func(pos token.Pos, msg string, trace []string)) *funcSummary {
	sig := u.obj.Type().(*types.Signature)
	in := &interp{
		engine: e,
		pkg:    u.pkg,
		info:   u.pkg.Info,
		report: report,
		env:    make(map[types.Object]tval),
		params: make(map[types.Object]int),
	}
	idx := 0
	if sig.Recv() != nil {
		in.params[sig.Recv()] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		in.params[sig.Params().At(i)] = idx
		idx++
	}
	in.sum = newSummary(funcKey(u.obj), sig.Results().Len())
	for i := range in.sum.resultNoised {
		in.sum.resultNoised[i] = true // until a return says otherwise
	}
	in.results = make([]types.Object, 0, sig.Results().Len())
	for i := 0; i < sig.Results().Len(); i++ {
		in.results = append(in.results, sig.Results().At(i))
	}
	in.stmt(u.decl.Body)
	if !in.returned {
		for i := range in.sum.resultNoised {
			in.sum.resultNoised[i] = false
		}
	}
	return in.sum
}

// interp interprets one function body over the taint lattice.
type interp struct {
	engine   *engine
	pkg      *lintPackage
	info     *types.Info
	report   func(pos token.Pos, msg string, trace []string)
	env      map[types.Object]tval
	params   map[types.Object]int
	results  []types.Object
	sum      *funcSummary
	returned bool
}

func (in *interp) lookup(obj types.Object) tval {
	if v, ok := in.env[obj]; ok {
		return v
	}
	if i, ok := in.params[obj]; ok {
		return tval{params: 1 << uint(i)}
	}
	return tval{}
}

// taintObj merges v into obj's abstract value, and — when obj is a
// parameter — records the mutation in the summary so callers see it.
func (in *interp) taintObj(obj types.Object, v tval) {
	if obj == nil {
		return
	}
	in.env[obj] = mergeVal(in.lookup(obj), v)
	if i, ok := in.params[obj]; ok {
		if v.raw != nil && in.sum.argRaw[i] == nil {
			in.sum.argRaw[i] = v.raw
		}
		in.sum.argFlows[i] |= v.params
	}
}

// noiseObj marks obj as definitely noised from here on.
func (in *interp) noiseObj(obj types.Object) {
	if obj == nil {
		return
	}
	in.env[obj] = tval{noised: true}
	if i, ok := in.params[obj]; ok {
		in.sum.sanitizes |= 1 << uint(i)
		delete(in.sum.argRaw, i)
	}
}

// rootObj resolves the variable at the base of an lvalue: x, x.f,
// x[i].g, *x, and so on.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel != nil {
				e = x.X
				continue
			}
			return info.ObjectOf(x.Sel)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (in *interp) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			in.stmt(st)
		}
	case *ast.ExprStmt:
		in.exprN(s.X)
	case *ast.AssignStmt:
		in.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var v tval
					if i < len(vs.Values) {
						v = in.expr(vs.Values[i])
					} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
						vals := in.exprN(vs.Values[0])
						if i < len(vals) {
							v = vals[i]
						}
					}
					in.taintObj(in.info.ObjectOf(name), v)
				}
			}
		}
	case *ast.IfStmt:
		in.stmt(s.Init)
		in.expr(s.Cond)
		in.stmt(s.Body)
		in.stmt(s.Else)
	case *ast.ForStmt:
		in.stmt(s.Init)
		if s.Cond != nil {
			in.expr(s.Cond)
		}
		// Two passes propagate loop-carried taint one level.
		in.stmt(s.Body)
		in.stmt(s.Post)
		in.stmt(s.Body)
		in.stmt(s.Post)
	case *ast.RangeStmt:
		v := in.expr(s.X)
		elem := tval{raw: v.raw, noised: v.noised, params: v.params}
		if s.Key != nil {
			in.taintObj(rootObj(in.info, s.Key), elem)
		}
		if s.Value != nil {
			in.taintObj(rootObj(in.info, s.Value), elem)
		}
		in.stmt(s.Body)
		in.stmt(s.Body)
	case *ast.SwitchStmt:
		in.stmt(s.Init)
		if s.Tag != nil {
			in.expr(s.Tag)
		}
		in.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		in.stmt(s.Init)
		in.stmt(s.Assign)
		in.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			in.expr(e)
		}
		for _, st := range s.Body {
			in.stmt(st)
		}
	case *ast.SelectStmt:
		in.stmt(s.Body)
	case *ast.CommClause:
		in.stmt(s.Comm)
		for _, st := range s.Body {
			in.stmt(st)
		}
	case *ast.ReturnStmt:
		in.returned = true
		var vals []tval
		if len(s.Results) == 1 && len(in.results) > 1 {
			vals = in.exprN(s.Results[0])
		} else {
			for _, r := range s.Results {
				vals = append(vals, in.expr(r))
			}
		}
		if len(s.Results) == 0 {
			for _, obj := range in.results {
				vals = append(vals, in.lookup(obj))
			}
		}
		for i, v := range vals {
			if i >= len(in.sum.flows) {
				break
			}
			if v.raw != nil && in.sum.resultRaw[i] == nil {
				in.sum.resultRaw[i] = v.raw
			}
			in.sum.flows[i] |= v.params
			if !v.noised {
				in.sum.resultNoised[i] = false
			}
		}
	case *ast.GoStmt:
		in.exprN(s.Call)
	case *ast.DeferStmt:
		in.exprN(s.Call)
	case *ast.SendStmt:
		v := in.expr(s.Value)
		in.taintObj(rootObj(in.info, s.Chan), v)
	case *ast.IncDecStmt:
		in.expr(s.X)
	case *ast.LabeledStmt:
		in.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (in *interp) assign(s *ast.AssignStmt) {
	var vals []tval
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		vals = in.exprN(s.Rhs[0])
		for len(vals) < len(s.Lhs) {
			vals = append(vals, tval{})
		}
	} else {
		for _, r := range s.Rhs {
			vals = append(vals, in.expr(r))
		}
	}
	for i, lhs := range s.Lhs {
		if i >= len(vals) {
			break
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := in.info.ObjectOf(id)
			if obj == nil {
				continue
			}
			// Plain = to a simple variable replaces its value; composed
			// assignments and mutations merge.
			if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
				in.env[obj] = vals[i]
				if pi, ok := in.params[obj]; ok {
					if vals[i].raw != nil && in.sum.argRaw[pi] == nil {
						in.sum.argRaw[pi] = vals[i].raw
					}
					in.sum.argFlows[pi] |= vals[i].params
				}
			} else {
				in.taintObj(obj, vals[i])
			}
			continue
		}
		// x.f = v, x[i] = v, *p = v: taint the root container.
		in.taintObj(rootObj(in.info, lhs), vals[i])
	}
}

// expr evaluates e to a single abstract value.
func (in *interp) expr(e ast.Expr) tval {
	vs := in.exprN(e)
	if len(vs) == 0 {
		return tval{}
	}
	return vs[0]
}

// exprN evaluates e, which may be a multi-valued call.
func (in *interp) exprN(e ast.Expr) []tval {
	switch e := ast.Unparen(e).(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := in.info.ObjectOf(e)
		if obj == nil {
			return []tval{{}}
		}
		if fn, ok := obj.(*types.Func); ok {
			if s := in.engine.summaries[fn]; s != nil {
				return []tval{{funcs: []*funcSummary{s}}}
			}
			return []tval{{}}
		}
		return []tval{in.lookup(obj)}
	case *ast.SelectorExpr:
		if sel, ok := in.info.Selections[e]; ok && sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Method value: carry the summary; the receiver binding is
				// approximated away.
				if s := in.engine.summaries[fn]; s != nil {
					return []tval{{funcs: []*funcSummary{s}}}
				}
				return []tval{{}}
			}
			v := in.expr(e.X)
			return []tval{{raw: v.raw, noised: v.noised, params: v.params}}
		}
		// Qualified identifier pkg.X.
		if fn, ok := in.info.Uses[e.Sel].(*types.Func); ok {
			if s := in.engine.summaries[fn]; s != nil {
				return []tval{{funcs: []*funcSummary{s}}}
			}
		}
		return []tval{{}}
	case *ast.CallExpr:
		return in.call(e)
	case *ast.BinaryExpr:
		x, y := in.expr(e.X), in.expr(e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			// The additive-noise rule: raw ± noised is a noised quantity
			// (this is literally what the Laplace mechanism computes).
			if (x.raw != nil && y.noised) || (y.raw != nil && x.noised) {
				return []tval{{noised: true, params: x.params | y.params}}
			}
			return []tval{mergeVal(x, y)}
		case token.LAND, token.LOR, token.EQL, token.NEQ, token.LSS,
			token.LEQ, token.GTR, token.GEQ:
			// Control-flow taint is out of scope.
			return []tval{{}}
		default:
			return []tval{mergeVal(x, y)}
		}
	case *ast.UnaryExpr:
		v := in.expr(e.X)
		return []tval{v}
	case *ast.StarExpr:
		return []tval{in.expr(e.X)}
	case *ast.IndexExpr:
		v := in.expr(e.X)
		in.expr(e.Index)
		return []tval{{raw: v.raw, noised: v.noised, params: v.params}}
	case *ast.SliceExpr:
		return []tval{in.expr(e.X)}
	case *ast.TypeAssertExpr:
		v := in.expr(e.X)
		return []tval{v, {}}
	case *ast.CompositeLit:
		out := tval{}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out = mergeVal(out, in.expr(kv.Value))
			} else {
				out = mergeVal(out, in.expr(el))
			}
		}
		return []tval{out}
	case *ast.FuncLit:
		return []tval{{funcs: []*funcSummary{in.analyzeLit(e)}}}
	case *ast.BasicLit:
		return []tval{{}}
	}
	return []tval{{}}
}

// analyzeLit summarizes a function literal in the context of the
// enclosing function: free variables keep their current abstract
// values, and sink hits inside the literal report through the enclosing
// interpreter.
func (in *interp) analyzeLit(lit *ast.FuncLit) *funcSummary {
	sig, ok := in.info.Types[lit].Type.(*types.Signature)
	if !ok {
		return newSummary("func literal", 0)
	}
	inner := &interp{
		engine: in.engine,
		pkg:    in.pkg,
		info:   in.info,
		report: in.report,
		env:    make(map[types.Object]tval),
		params: make(map[types.Object]int),
	}
	// Free variables: the literal sees the enclosing environment, but
	// writes do not flow back (optimistic; closures that launder raw
	// data through captured state need a declared fact to be seen).
	for obj, v := range in.env {
		inner.env[obj] = v
	}
	for i := 0; i < sig.Params().Len(); i++ {
		inner.params[sig.Params().At(i)] = i
	}
	inner.sum = newSummary("func literal at "+in.engine.fset.Position(lit.Pos()).String(), sig.Results().Len())
	for i := range inner.sum.resultNoised {
		inner.sum.resultNoised[i] = true
	}
	for i := 0; i < sig.Results().Len(); i++ {
		inner.results = append(inner.results, sig.Results().At(i))
	}
	inner.stmt(lit.Body)
	if !inner.returned {
		for i := range inner.sum.resultNoised {
			inner.sum.resultNoised[i] = false
		}
	}
	in.sum.polls = in.sum.polls || inner.sum.polls
	return inner.sum
}

// staticCallee resolves a call to its static *types.Func, also
// returning the receiver expression for method calls.
func staticCallee(info *types.Info, c *ast.CallExpr) (fn *types.Func, recv ast.Expr) {
	switch f := ast.Unparen(c.Fun).(type) {
	case *ast.Ident:
		if fo, ok := info.Uses[f].(*types.Func); ok {
			return fo, nil
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel != nil {
			if fo, ok := sel.Obj().(*types.Func); ok {
				return fo, f.X
			}
			return nil, nil
		}
		if fo, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fo, nil
		}
	}
	return nil, nil
}

func (in *interp) call(c *ast.CallExpr) []tval {
	// Type conversion: taint passes through.
	if tv, ok := in.info.Types[c.Fun]; ok && tv.IsType() {
		if len(c.Args) == 1 {
			return []tval{in.expr(c.Args[0])}
		}
		return []tval{{}}
	}
	// Builtins.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		if _, ok := in.info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append":
				out := tval{}
				for _, a := range c.Args {
					out = mergeVal(out, in.expr(a))
				}
				return []tval{out}
			case "copy":
				if len(c.Args) == 2 {
					src := in.expr(c.Args[1])
					in.taintObj(rootObj(in.info, c.Args[0]), src)
				}
				return []tval{{}}
			case "len", "cap", "make", "new", "delete", "clear", "min", "max":
				for _, a := range c.Args {
					in.expr(a)
				}
				return []tval{{}}
			default:
				for _, a := range c.Args {
					in.expr(a)
				}
				return []tval{{}}
			}
		}
	}

	fn, recvExpr := staticCallee(in.info, c)

	// Argument values; for methods the receiver is argument 0.
	var argExprs []ast.Expr
	if recvExpr != nil {
		argExprs = append(argExprs, recvExpr)
	}
	argExprs = append(argExprs, c.Args...)
	args := make([]tval, len(argExprs))
	for i, a := range argExprs {
		args[i] = in.expr(a)
	}

	if fn == nil {
		// Dynamic call through a function value: apply every summary the
		// value may hold; with none, optimistically assume the callee
		// may sanitize its arguments (the BuildSynopsis perturb pattern)
		// and returns clean data.
		fv := in.expr(c.Fun)
		n := 1
		if sig, ok := in.info.Types[c.Fun].Type.Underlying().(*types.Signature); ok {
			n = sig.Results().Len()
		}
		if len(fv.funcs) == 0 {
			for _, a := range argExprs {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok {
					in.noiseObj(in.info.ObjectOf(id))
				}
			}
			return make([]tval, max(n, 1))
		}
		out := make([]tval, max(n, 1))
		for _, s := range fv.funcs {
			res := in.applySummary(s, args, argExprs, c)
			for i := range out {
				if i < len(res) {
					out[i] = mergeVal(out[i], res[i])
				}
			}
		}
		return out
	}

	key := funcKey(fn)
	nres := 0
	if sig, ok := fn.Type().(*types.Signature); ok {
		nres = sig.Results().Len()
	}
	out := make([]tval, max(nres, 1))

	// Declared sinks.
	if sinkParams, ok := in.engine.facts.sinks[key]; ok {
		for _, pi := range sinkParams {
			if pi < len(args) {
				in.hitSink(args[pi], key, nil, c.Pos())
			}
		}
	}
	// Sink types: any method call on e.g. net/http.ResponseWriter
	// publishes all its arguments.
	if rk := recvTypeKey(fn); rk != "" && in.engine.facts.sinkTypes[rk] {
		for i := 1; i < len(args); i++ {
			in.hitSink(args[i], key, nil, c.Pos())
		}
	}
	// Declared sources.
	if results, ok := in.engine.facts.sources[key]; ok {
		for _, ri := range results {
			if ri < len(out) {
				out[ri] = tval{raw: &provenance{desc: "raw data from " + key, pos: c.Pos()}}
			}
		}
		return out
	}
	// Declared sanitizers.
	if ps, ok := in.engine.facts.sanParams[key]; ok || len(in.engine.facts.sanResults[key]) > 0 {
		for _, pi := range ps {
			if pi < len(argExprs) {
				if id, ok := ast.Unparen(argExprs[pi]).(*ast.Ident); ok {
					in.noiseObj(in.info.ObjectOf(id))
				}
			}
		}
		for _, ri := range in.engine.facts.sanResults[key] {
			if ri < len(out) {
				out[ri] = tval{noised: true}
			}
		}
		return out
	}
	// Whole sanitizer packages (internal/noise): every result is noise.
	if fn.Pkg() != nil && in.engine.facts.sanPkgs[fn.Pkg().Path()] {
		for i := range out {
			out[i] = tval{noised: true}
		}
		return out
	}
	// Context polls.
	if rk := recvTypeKey(fn); rk == "context.Context" && (fn.Name() == "Err" || fn.Name() == "Done") {
		in.sum.polls = true
	}

	// Summarized module function.
	if s := in.engine.summaries[fn]; s != nil {
		return in.applySummary(s, args, argExprs, c)
	}
	// Unknown callee (stdlib, interface method, vendored code): taint
	// flows from arguments to results — strconv.FormatFloat must not
	// launder a raw count — but nothing sanitizes without a declared
	// fact in lint.facts.
	through := tval{}
	for _, a := range args {
		through = mergeVal(through, tval{raw: a.raw, noised: a.noised, params: a.params})
	}
	for i := range out {
		out[i] = through
	}
	return out
}

// applySummary transfers a callee summary into the caller: sink hits,
// argument mutations, sanitization, poll reachability, and result
// taint.
func (in *interp) applySummary(s *funcSummary, args []tval, argExprs []ast.Expr, c *ast.CallExpr) []tval {
	if s.polls {
		in.sum.polls = true
	}
	for pi, rec := range s.sinks {
		if pi < len(args) {
			in.hitSink(args[pi], rec.sink, append([]string{s.name}, rec.via...), c.Pos())
		}
	}
	for pi := range s.argRaw {
		if pi < len(argExprs) {
			in.taintObj(rootObj(in.info, argExprs[pi]), tval{
				raw: &provenance{desc: "written by " + s.name, pos: c.Pos(), prev: s.argRaw[pi]},
			})
		}
	}
	for pi, srcBits := range s.argFlows {
		if pi >= len(argExprs) {
			continue
		}
		v := tval{}
		for j := range args {
			if srcBits&(1<<uint(j)) != 0 {
				v = mergeVal(v, args[j])
			}
		}
		if v.tainted() {
			in.taintObj(rootObj(in.info, argExprs[pi]), v)
		}
	}
	for pi := range argExprs {
		if s.sanitizes&(1<<uint(pi)) != 0 {
			if id, ok := ast.Unparen(argExprs[pi]).(*ast.Ident); ok {
				in.noiseObj(in.info.ObjectOf(id))
			}
		}
	}
	out := make([]tval, max(len(s.resultRaw), 1))
	for i := range s.resultRaw {
		v := tval{}
		if s.resultRaw[i] != nil {
			v.raw = &provenance{desc: "returned by " + s.name, pos: c.Pos(), prev: s.resultRaw[i]}
		}
		for j := range args {
			if s.flows[i]&(1<<uint(j)) != 0 {
				v = mergeVal(v, args[j])
			}
		}
		if v.raw != nil && s.resultRaw[i] == nil {
			// Raw data flowed in through an argument: record the helper as
			// a hop so the trace names every function it passed through.
			v.raw = &provenance{desc: "through " + s.name, pos: c.Pos(), prev: v.raw}
		}
		if s.resultNoised[i] && v.raw == nil {
			v.noised = true
		}
		out[i] = v
	}
	return out
}

// hitSink handles a value arriving at a publish sink: raw data is a
// finding (Phase B) and parameter-derived data becomes a summary entry
// so callers inherit the obligation.
func (in *interp) hitSink(v tval, sink string, via []string, pos token.Pos) {
	if v.noised {
		return
	}
	if v.raw != nil && in.report != nil {
		hop := &provenance{desc: "published by " + sink, pos: pos, prev: v.raw}
		in.report(pos, fmt.Sprintf("raw (un-noised) data reaches publish sink %s; route it through internal/noise first", sink),
			hop.trace(in.engine.fset))
	}
	for j := 0; j < 64; j++ {
		if v.params&(1<<uint(j)) != 0 {
			if _, ok := in.sum.sinks[j]; !ok {
				in.sum.sinks[j] = &sinkRecord{sink: sink, via: via}
			}
		}
	}
}

// pollsIn reports whether the statement contains a direct ctx.Err()/
// ctx.Done() call or a call to a summarized function that polls.
func (e *engine) pollsIn(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := staticCallee(info, c)
		if fn == nil {
			return true
		}
		if rk := recvTypeKey(fn); rk == "context.Context" && (fn.Name() == "Err" || fn.Name() == "Done") {
			found = true
			return false
		}
		if s := e.summaries[fn]; s != nil && s.polls {
			found = true
			return false
		}
		return true
	})
	return found
}
