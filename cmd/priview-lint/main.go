// Command priview-lint is the repository's static-analysis gate. It
// loads and type-checks every package named on the command line and
// runs five repo-specific analyzers that enforce invariants the Go
// compiler cannot see:
//
//	randsource  privacy-critical randomness must flow through
//	            internal/noise (no math/rand, no wall-clock seeding)
//	floatcmp    no ==/!= between floating-point operands outside
//	            tolerance helpers
//	errdiscard  no silently discarded error returns in library code
//	panicmsg    panics in internal/* must carry a "pkg:" prefix so
//	            accounting failures are attributable
//	attrset     attribute-set bitmasks must be built with
//	            internal/attrset, not hand-rolled 1<<attr loops
//
// A finding can be suppressed, with a mandatory written rationale, by a
// comment on the offending line or the line above:
//
//	//lint:ignore <check> <reason>
//
// Usage:
//
//	priview-lint [-json] [-list] packages...
//
// Packages are directories relative to the module root; "./..." and
// "dir/..." expand recursively. Exit status is 0 when clean, 1 when
// findings were reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

func main() {
	os.Exit(lintMain(os.Args[1:], os.Stdout, os.Stderr))
}

func lintMain(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("priview-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		emit(stderr, "usage: priview-lint [-json] [-list] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			emit(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		emit(stderr, "priview-lint: %v\n", err)
		return 2
	}
	l, err := newLoader(moduleDir)
	if err != nil {
		emit(stderr, "priview-lint: %v\n", err)
		return 2
	}
	dirs, err := expandPatterns(moduleDir, fs.Args())
	if err != nil {
		emit(stderr, "priview-lint: %v\n", err)
		return 2
	}

	var findings []Finding
	for _, dir := range dirs {
		path, err := importPathFor(l.moduleDir, l.modulePath, dir)
		if err != nil {
			emit(stderr, "priview-lint: %v\n", err)
			return 2
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			emit(stderr, "priview-lint: %v\n", err)
			return 2
		}
		findings = append(findings, runAnalyzers(pkg)...)
	}

	if *jsonOut {
		type jsonFinding struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Message string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Check: f.Check, File: f.Pos.Filename,
				Line: f.Pos.Line, Column: f.Pos.Column,
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			emit(stderr, "priview-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			emit(stdout, "%s\n", f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// emit writes CLI output to one of the process's standard streams; a
// failed write there has no error sink, so the error is dropped here,
// once, instead of at every call site.
func emit(w *os.File, format string, args ...any) {
	//lint:ignore errdiscard CLI output to the process streams; there is nowhere to report a write failure
	_, _ = fmt.Fprintf(w, format, args...)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so the tool works from any subdirectory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
