// Command priview-lint is the repository's static-analysis gate. It
// loads and type-checks every package named on the command line and
// runs nine repo-specific analyzers that enforce invariants the Go
// compiler cannot see:
//
//	randsource  privacy-critical randomness must flow through
//	            internal/noise (no math/rand, no wall-clock seeding)
//	floatcmp    no ==/!= between floating-point operands outside
//	            tolerance helpers
//	errdiscard  no silently discarded error returns in library code
//	panicmsg    panics in internal/* must carry a "pkg:" prefix so
//	            accounting failures are attributable
//	attrset     attribute-set bitmasks must be built with
//	            internal/attrset, not hand-rolled 1<<attr loops
//	privflow    whole-program taint analysis: no path from raw
//	            dataset counts to a publish sink without an
//	            intervening internal/noise call
//	ctxflow     data-dependent loops in solver packages must poll
//	            ctx.Err()/ctx.Done()
//	budgetlit   no literal ε/δ outside cmd/ flag parsing and the
//	            packages exempted (with reasons) in lint.facts
//	hotalloc    no allocations inside loops marked //lint:hot
//
// The dataflow analyzers read their source/sanitizer/sink
// classification from lint.facts at the module root; a new endpoint or
// noise primitive must be classified there before the tree is clean.
//
// A finding can be suppressed, with a mandatory written rationale, by a
// comment on the offending line or the line above:
//
//	//lint:ignore <check> <reason>
//
// A directive that suppresses nothing is itself reported.
//
// Usage:
//
//	priview-lint [-json] [-list] [-serial] [-stats] packages...
//
// Packages are directories relative to the module root; "./..." and
// "dir/..." expand recursively. Exit status is 0 when clean, 1 when
// findings were reported, 2 on usage errors, and 3 when a package
// failed to load or type-check (diagnostics are printed per file).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

func main() {
	os.Exit(lintMain(os.Args[1:], os.Stdout, os.Stderr))
}

const (
	exitClean = 0
	exitDirty = 1
	exitUsage = 2
	exitLoad  = 3
)

func lintMain(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("priview-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	serial := fs.Bool("serial", false, "disable parallel loading and analysis (for benchmarking)")
	stats := fs.Bool("stats", false, "print load/analysis wall-clock to stderr")
	fs.Usage = func() {
		emit(stderr, "usage: priview-lint [-json] [-list] [-serial] [-stats] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *list {
		for _, a := range analyzers {
			emit(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return exitUsage
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		emit(stderr, "priview-lint: %v\n", err)
		return exitUsage
	}
	facts, err := loadFacts(filepath.Join(moduleDir, "lint.facts"))
	if err != nil {
		emit(stderr, "priview-lint: %v\n", err)
		return exitUsage
	}
	l, err := newLoader(moduleDir)
	if err != nil {
		emit(stderr, "priview-lint: %v\n", err)
		return exitUsage
	}
	if *serial {
		l.workers = 1
	}
	dirs, err := expandPatterns(moduleDir, fs.Args())
	if err != nil {
		emit(stderr, "priview-lint: %v\n", err)
		return exitUsage
	}
	refs := make([]pkgRef, 0, len(dirs))
	for _, dir := range dirs {
		path, err := importPathFor(l.moduleDir, l.modulePath, dir)
		if err != nil {
			emit(stderr, "priview-lint: %v\n", err)
			return exitUsage
		}
		refs = append(refs, pkgRef{Dir: dir, Path: path})
	}

	loadStart := time.Now()
	pkgs, err := l.Load(refs)
	if err != nil {
		var le *LoadError
		if errors.As(err, &le) {
			emit(stderr, "priview-lint: load failed with %d error(s):\n", len(le.Diags))
			for _, d := range le.Diags {
				emit(stderr, "%s\n", d)
			}
			return exitLoad
		}
		emit(stderr, "priview-lint: %v\n", err)
		return exitUsage
	}
	loadTime := time.Since(loadStart)

	analyzeStart := time.Now()
	eng := newEngine(facts, l.fset, l.allInOrder())
	perPkg := make([][]Finding, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if *serial {
		workers = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			perPkg[i] = runAnalyzers(pkg, eng)
		}()
	}
	wg.Wait()
	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	// Global order by position: output is byte-identical however the
	// requested packages were ordered on the command line.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Check < findings[j].Check
	})
	analyzeTime := time.Since(analyzeStart)

	if *stats {
		emit(stderr, "priview-lint: %d packages, %d findings, load %s, analyze %s, total %s (workers=%d)\n",
			len(pkgs), len(findings), loadTime.Round(time.Millisecond),
			analyzeTime.Round(time.Millisecond),
			(loadTime + analyzeTime).Round(time.Millisecond), workers)
	}

	if *jsonOut {
		type jsonFinding struct {
			Check   string   `json:"check"`
			File    string   `json:"file"`
			Line    int      `json:"line"`
			Column  int      `json:"column"`
			Message string   `json:"message"`
			Trace   []string `json:"trace,omitempty"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Check: f.Check, File: f.Pos.Filename,
				Line: f.Pos.Line, Column: f.Pos.Column,
				Message: f.Message, Trace: f.Trace,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			emit(stderr, "priview-lint: %v\n", err)
			return exitUsage
		}
	} else {
		for _, f := range findings {
			emit(stdout, "%s\n", f)
		}
	}
	if len(findings) > 0 {
		return exitDirty
	}
	return exitClean
}

// emit writes CLI output to one of the process's standard streams; a
// failed write there has no error sink, so the error is dropped here,
// once, instead of at every call site.
func emit(w *os.File, format string, args ...any) {
	//lint:ignore errdiscard CLI output to the process streams; there is nowhere to report a write failure
	_, _ = fmt.Fprintf(w, format, args...)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so the tool works from any subdirectory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
