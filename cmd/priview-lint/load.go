package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// lintPackage is one loaded, type-checked, non-test package.
type lintPackage struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Deps  []string // intra-module dependency import paths, sorted
}

// Diagnostic is one load-time problem (parse or type error) pinned to a
// file position. Load errors are fatal: partial analysis over a
// half-checked tree would silently skip the very invariants the tool
// exists to prove.
type Diagnostic struct {
	Pos token.Position
	Msg string
}

func (d Diagnostic) String() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
	}
	return d.Msg
}

// LoadError aggregates every parse and type-check diagnostic from a
// failed Load, sorted by file and position so the report reads like
// compiler output.
type LoadError struct {
	Diags []Diagnostic
}

func (e *LoadError) Error() string {
	if len(e.Diags) == 1 {
		return e.Diags[0].String()
	}
	return fmt.Sprintf("%s (and %d more errors)", e.Diags[0], len(e.Diags)-1)
}

// pkgRef names one package to load: the directory holding its sources
// and the import path it is checked under.
type pkgRef struct {
	Dir  string
	Path string
}

// loader parses and type-checks packages inside the module, resolving
// intra-module imports itself and the standard library through gc
// export data (with a source-importer fallback). It deliberately avoids
// golang.org/x/tools (repo rule: standard library only).
//
// Loading is a four-phase pipeline: parse the requested packages plus
// their transitive intra-module dependencies, resolve export data for
// every external import in one `go list -export -deps` subprocess,
// topologically order the new packages, then type-check them with
// independent packages running concurrently (workers goroutines, one
// per package, gated by a GOMAXPROCS-sized semaphore).
type loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	workers    int // max concurrent type-checks; 0 means GOMAXPROCS

	stdMu       sync.Mutex
	std         types.Importer
	expMu       sync.Mutex        // guards exportFiles; separate from stdMu because the gc importer calls lookupExport while an Import holds stdMu
	exportFiles map[string]string // external import path -> export data file
	noExport    bool              // go list -export unavailable; source importer in use

	mu   sync.Mutex
	pkgs map[string]*lintPackage
	topo []string // every loaded package, dependencies before dependents
}

func newLoader(moduleDir string) (*loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &loader{
		fset:        token.NewFileSet(),
		moduleDir:   abs,
		modulePath:  modulePath,
		exportFiles: make(map[string]string),
		pkgs:        make(map[string]*lintPackage),
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

func (l *loader) inModule(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// dirFor maps a canonical in-module import path to its source directory.
func (l *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

func (l *loader) parallelism() int {
	if l.workers > 0 {
		return l.workers
	}
	return runtime.GOMAXPROCS(0)
}

// LoadDir loads a single package (plus dependencies); kept as the
// convenience entry point for tests and single-package callers.
func (l *loader) LoadDir(dir, path string) (*lintPackage, error) {
	ps, err := l.Load([]pkgRef{{Dir: dir, Path: path}})
	if err != nil {
		return nil, err
	}
	return ps[0], nil
}

// parseUnit is a parsed-but-not-yet-checked package.
type parseUnit struct {
	ref   pkgRef
	files []*ast.File
	deps  []string // intra-module imports, sorted, deduped
}

// Load loads the requested packages and, transitively, every
// intra-module dependency not already cached, returning the requested
// packages in request order. Any parse or type-check failure aborts the
// whole load with a *LoadError carrying per-file diagnostics.
func (l *loader) Load(reqs []pkgRef) ([]*lintPackage, error) {
	// Phase 1: parse, breadth-first over intra-module imports.
	units := make(map[string]*parseUnit)
	var diags []Diagnostic
	queue := append([]pkgRef(nil), reqs...)
	l.mu.Lock()
	loaded := make(map[string]bool, len(l.pkgs))
	for p := range l.pkgs {
		loaded[p] = true
	}
	l.mu.Unlock()
	for len(queue) > 0 {
		ref := queue[0]
		queue = queue[1:]
		if loaded[ref.Path] || units[ref.Path] != nil {
			continue
		}
		names, err := goFilesIn(ref.Dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("no non-test Go files in %s", ref.Dir)
		}
		u := &parseUnit{ref: ref}
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, filepath.Join(ref.Dir, name), nil, parser.ParseComments)
			if err != nil {
				diags = append(diags, parseDiags(err)...)
				continue
			}
			u.files = append(u.files, f)
		}
		units[ref.Path] = u
		seen := make(map[string]bool)
		for _, f := range u.files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if !l.inModule(path) || seen[path] {
					continue
				}
				seen[path] = true
				u.deps = append(u.deps, path)
				if !loaded[path] && units[path] == nil {
					queue = append(queue, pkgRef{Dir: l.dirFor(path), Path: path})
				}
			}
		}
		sort.Strings(u.deps)
	}
	if len(diags) > 0 {
		sortDiags(diags)
		return nil, &LoadError{Diags: diags}
	}

	// Phase 2: make sure the stdlib importer can resolve every external
	// import before workers start racing on it.
	l.ensureStd(units)

	// Phase 3: topological order, dependencies first, deterministic.
	order, err := topoOrder(units)
	if err != nil {
		return nil, err
	}

	// Phase 4: type-check; each package waits for its in-module
	// dependencies, then runs under the worker-count semaphore.
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, l.parallelism())
		dmu  sync.Mutex
		fail = make(map[string]bool)
	)
	done := make(map[string]chan struct{}, len(units))
	for path := range units {
		done[path] = make(chan struct{})
	}
	for _, path := range order {
		u := units[path]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[u.ref.Path])
			blocked := false
			for _, d := range u.deps {
				if ch, ok := done[d]; ok {
					<-ch
					dmu.Lock()
					if fail[d] {
						blocked = true
					}
					dmu.Unlock()
				}
			}
			if blocked {
				// A dependency already failed; its diagnostics cover the
				// root cause, so stay silent rather than cascade.
				dmu.Lock()
				fail[u.ref.Path] = true
				dmu.Unlock()
				return
			}
			sem <- struct{}{}
			ds := l.check(u)
			<-sem
			if len(ds) > 0 {
				dmu.Lock()
				fail[u.ref.Path] = true
				diags = append(diags, ds...)
				dmu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(diags) > 0 {
		sortDiags(diags)
		return nil, &LoadError{Diags: diags}
	}

	l.mu.Lock()
	l.topo = append(l.topo, order...)
	out := make([]*lintPackage, len(reqs))
	for i, r := range reqs {
		out[i] = l.pkgs[r.Path]
	}
	l.mu.Unlock()
	return out, nil
}

// check type-checks one parsed unit, storing the result in l.pkgs on
// success and returning diagnostics on failure. Dependencies must
// already be in l.pkgs.
func (l *loader) check(u *parseUnit) []Diagnostic {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var diags []Diagnostic
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				diags = append(diags, Diagnostic{Pos: te.Fset.Position(te.Pos), Msg: te.Msg})
			} else {
				diags = append(diags, Diagnostic{Msg: err.Error()})
			}
		},
	}
	//lint:ignore errdiscard type errors are gathered through conf.Error; the returned error duplicates the first of them
	tpkg, _ := conf.Check(u.ref.Path, l.fset, u.files, info)
	if len(diags) > 0 {
		return diags
	}
	p := &lintPackage{
		Path:  u.ref.Path,
		Dir:   u.ref.Dir,
		Fset:  l.fset,
		Files: u.files,
		Types: tpkg,
		Info:  info,
		Deps:  u.deps,
	}
	l.mu.Lock()
	l.pkgs[u.ref.Path] = p
	l.mu.Unlock()
	return nil
}

// Import implements types.Importer for the type checker: intra-module
// packages come from the cache (their check completed before any
// dependent started), everything else from the stdlib importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		l.mu.Lock()
		p := l.pkgs[path]
		l.mu.Unlock()
		if p == nil {
			return nil, fmt.Errorf("intra-module package %s not loaded", path)
		}
		return p.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// ensureStd prepares the standard-library importer. The fast path asks
// the go tool for compiled export data (`go list -export -deps`) and
// reads it with the gc importer — an order of magnitude faster than
// re-type-checking the stdlib from source. When the subprocess is
// unavailable the slow source importer takes over.
func (l *loader) ensureStd(units map[string]*parseUnit) {
	ext := make(map[string]bool)
	for _, u := range units {
		for _, f := range u.files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if !l.inModule(p) && p != "unsafe" {
					ext[p] = true
				}
			}
		}
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	l.expMu.Lock()
	var missing []string
	for p := range ext {
		if _, ok := l.exportFiles[p]; !ok {
			missing = append(missing, p)
		}
	}
	l.expMu.Unlock()
	sort.Strings(missing)
	if l.std == nil {
		if err := l.listExport(missing); err != nil {
			l.noExport = true
			l.std = importer.ForCompiler(l.fset, "source", nil)
			return
		}
		l.std = importer.ForCompiler(l.fset, "gc", l.lookupExport)
		return
	}
	if !l.noExport && len(missing) > 0 {
		//lint:ignore errdiscard a failed incremental listing surfaces as a type error on the import that needed it
		_ = l.listExport(missing)
	}
}

// listExport resolves paths (and their dependency closure) to export
// data files via one `go list` subprocess, merging into l.exportFiles.
func (l *loader) listExport(paths []string) error {
	if len(paths) == 0 {
		paths = []string{"fmt"} // probe: establishes that -export works at all
	}
	args := append([]string{"list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.moduleDir
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export: %w", err)
	}
	l.expMu.Lock()
	defer l.expMu.Unlock()
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if !ok || file == "" {
			continue
		}
		l.exportFiles[path] = file
	}
	return nil
}

// lookupExport feeds the gc importer export data for one import path.
func (l *loader) lookupExport(path string) (io.ReadCloser, error) {
	l.expMu.Lock()
	file, ok := l.exportFiles[path]
	l.expMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	return os.Open(file)
}

// topoOrder orders units dependencies-first (Kahn's algorithm), with
// lexicographic tie-breaking so the order — and therefore everything
// ordered by it downstream — is deterministic. Edges to packages loaded
// in a previous call are already satisfied and ignored.
func topoOrder(units map[string]*parseUnit) ([]string, error) {
	indeg := make(map[string]int, len(units))
	dependents := make(map[string][]string)
	for path, u := range units {
		if _, ok := indeg[path]; !ok {
			indeg[path] = 0
		}
		for _, d := range u.deps {
			if _, ok := units[d]; !ok {
				continue
			}
			indeg[path]++
			dependents[d] = append(dependents[d], path)
		}
	}
	var ready []string
	for path, n := range indeg {
		if n == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	order := make([]string, 0, len(units))
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		order = append(order, path)
		changed := false
		for _, dep := range dependents[path] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(order) != len(units) {
		var stuck []string
		for path, n := range indeg {
			if n > 0 {
				stuck = append(stuck, path)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("import cycle among %s", strings.Join(stuck, ", "))
	}
	return order, nil
}

// allInOrder returns every package loaded so far, dependencies before
// dependents — the order the dataflow engine builds function summaries
// in.
func (l *loader) allInOrder() []*lintPackage {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*lintPackage, 0, len(l.topo))
	for _, path := range l.topo {
		if p := l.pkgs[path]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// parseDiags expands a parser error (usually a scanner.ErrorList) into
// positioned diagnostics.
func parseDiags(err error) []Diagnostic {
	if list, ok := err.(scanner.ErrorList); ok {
		ds := make([]Diagnostic, 0, len(list))
		for _, e := range list {
			ds = append(ds, Diagnostic{Pos: e.Pos, Msg: e.Msg})
		}
		return ds
	}
	return []Diagnostic{{Msg: err.Error()}}
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Msg < b.Msg
	})
}

// goFilesIn lists dir's buildable non-test .go files, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// expandPatterns resolves command-line package patterns ("./...",
// "dir/...", or a plain directory) into package directories relative to
// the module root. Directories named testdata or vendor, hidden
// directories, and directories without non-test Go files are skipped.
func expandPatterns(moduleDir string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root, recursive = rest, true
		}
		if root == "" || root == "." {
			root = moduleDir
		} else if !filepath.IsAbs(root) {
			root = filepath.Join(moduleDir, root)
		}
		if !recursive {
			names, err := goFilesIn(root)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("no non-test Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goFilesIn(p)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// importPathFor maps a package directory to its in-module import path.
func importPathFor(moduleDir, modulePath, dir string) (string, error) {
	rel, err := filepath.Rel(moduleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, moduleDir)
	}
	return modulePath + "/" + filepath.ToSlash(rel), nil
}
