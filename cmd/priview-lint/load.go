package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// lintPackage is one loaded, type-checked, non-test package.
type lintPackage struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader parses and type-checks packages inside the module, resolving
// intra-module imports itself and delegating the standard library to
// the stdlib source importer. It deliberately avoids golang.org/x/tools
// (repo rule: standard library only).
type loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*lintPackage
	loading    map[string]bool
}

func newLoader(moduleDir string) (*loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleDir:  abs,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*lintPackage),
		loading:    make(map[string]bool),
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// Import implements types.Importer so the type checker can resolve the
// imports it encounters while checking a package.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads a package by its canonical in-module import path.
func (l *loader) loadPath(path string) (*lintPackage, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleDir, filepath.FromSlash(rel))
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the non-test Go files in dir, giving
// the package the stated import path. Results are memoized by path.
func (l *loader) LoadDir(dir, path string) (*lintPackage, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	//lint:ignore errdiscard type errors are gathered through conf.Error; the returned error duplicates the first of them
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	p := &lintPackage{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// goFilesIn lists dir's buildable non-test .go files, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// expandPatterns resolves command-line package patterns ("./...",
// "dir/...", or a plain directory) into package directories relative to
// the module root. Directories named testdata or vendor, hidden
// directories, and directories without non-test Go files are skipped.
func expandPatterns(moduleDir string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root, recursive = rest, true
		}
		if root == "" || root == "." {
			root = moduleDir
		} else if !filepath.IsAbs(root) {
			root = filepath.Join(moduleDir, root)
		}
		if !recursive {
			names, err := goFilesIn(root)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("no non-test Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goFilesIn(p)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// importPathFor maps a package directory to its in-module import path.
func importPathFor(moduleDir, modulePath, dir string) (string, error) {
	rel, err := filepath.Rel(moduleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, moduleDir)
	}
	return modulePath + "/" + filepath.ToSlash(rel), nil
}
