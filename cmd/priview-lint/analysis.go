// Analysis framework for priview-lint: the Analyzer/Pass plumbing, the
// finding model, and the //lint:ignore suppression directives. Built on
// the standard library only (go/ast, go/token, go/types) per the repo's
// dependency policy.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// analyzers is the registry, in the order checks are run and listed.
// The first five are per-package AST checks; the last four run on the
// whole-program dataflow engine and silently skip when no engine is
// attached to the pass.
var analyzers = []*Analyzer{
	randsourceAnalyzer,
	floatcmpAnalyzer,
	errdiscardAnalyzer,
	panicmsgAnalyzer,
	attrsetAnalyzer,
	privflowAnalyzer,
	ctxflowAnalyzer,
	budgetlitAnalyzer,
	hotallocAnalyzer,
}

// Pass carries one package's syntax and type information to an
// analyzer, plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path, e.g. priview/internal/noise
	Pkg      *types.Package
	Info     *types.Info
	Files    []*ast.File // non-test files only
	Engine   *engine     // whole-program dataflow engine; nil in engine-less runs

	pkg      *lintPackage
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportTrace records a finding carrying a taint trace (source → hops →
// sink).
func (p *Pass) ReportTrace(pos token.Pos, msg string, trace []string) {
	*p.findings = append(*p.findings, Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: msg,
		Trace:   trace,
	})
}

// Finding is one reported violation. Trace, when present, walks the
// dataflow from the raw source to the sink, one hop per entry.
type Finding struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	Message string         `json:"message"`
	Trace   []string       `json:"trace,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
	for _, hop := range f.Trace {
		s += "\n\t" + hop
	}
	return s
}

// runAnalyzers runs every registered analyzer over pkg and returns the
// findings that survive //lint:ignore suppression, sorted by position.
// eng may be nil, in which case the dataflow analyzers skip and unused
// suppressions are not reported (a partial run cannot tell unused from
// not-yet-matched).
func runAnalyzers(pkg *lintPackage, eng *engine) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Files:    pkg.Files,
			Engine:   eng,
			pkg:      pkg,
			findings: &raw,
		}
		a.Run(pass)
	}
	out := applySuppressions(pkg, raw, eng != nil)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	check  string
	reason string
	line   int
	col    int
}

const directivePrefix = "lint:ignore"

// collectDirectives parses every //lint:ignore comment in the package,
// keyed by filename. Malformed directives (no check name, or a missing
// reason) are themselves findings: a suppression without a rationale is
// exactly the kind of silent exemption the linter exists to prevent.
func collectDirectives(pkg *lintPackage, report func(Finding)) map[string][]ignoreDirective {
	byFile := make(map[string][]ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Finding{
						Check:   "directive",
						Pos:     pos,
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\" with a non-empty reason",
					})
					continue
				}
				check := fields[0]
				if !knownCheck(check) {
					report(Finding{
						Check:   "directive",
						Pos:     pos,
						Message: fmt.Sprintf("//lint:ignore names unknown check %q", check),
					})
					continue
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], ignoreDirective{
					check:  check,
					reason: strings.Join(fields[1:], " "),
					line:   pos.Line,
					col:    pos.Column,
				})
			}
		}
	}
	return byFile
}

func knownCheck(name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// applySuppressions drops findings covered by a //lint:ignore directive
// on the same line or the line immediately above, and appends any
// directive-syntax findings. When the full analyzer set ran
// (complete=true), a directive that suppressed nothing is itself
// reported, staticcheck-style, so stale suppressions cannot rot in
// place.
func applySuppressions(pkg *lintPackage, raw []Finding, complete bool) []Finding {
	var out []Finding
	directives := collectDirectives(pkg, func(f Finding) { out = append(out, f) })
	used := make(map[*ignoreDirective]bool)
	for _, f := range raw {
		suppressed := false
		ds := directives[f.Pos.Filename]
		for i := range ds {
			d := &ds[i]
			if d.check == f.Check && (d.line == f.Pos.Line || d.line == f.Pos.Line-1) {
				suppressed = true
				used[d] = true
				// Keep scanning: several directives may target the same
				// finding line and all of them count as exercised.
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	if complete {
		for file, ds := range directives {
			_ = file
			for i := range ds {
				d := &ds[i]
				if !used[d] {
					out = append(out, Finding{
						Check:   "directive",
						Pos:     token.Position{Filename: file, Line: d.line, Column: d.col},
						Message: fmt.Sprintf("//lint:ignore %s suppresses nothing; remove the stale directive", d.check),
					})
				}
			}
		}
	}
	return out
}
