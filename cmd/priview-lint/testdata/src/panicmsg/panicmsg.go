// Package panicdemo is a golden-file fixture for the panicmsg
// analyzer; it is loaded as priview/internal/panicdemo, so panics must
// carry the "panicdemo:" prefix.
package panicdemo

import "fmt"

func goodLiteral() {
	panic("panicdemo: invariant broken")
}

func goodSprintf(err error) {
	panic(fmt.Sprintf("panicdemo: rebuild failed: %v", err))
}

func wrongPrefix() {
	panic("elsewhere: not attributable here") // want:panicmsg
}

func noPrefix(n int) {
	panic(fmt.Sprintf("cell %d out of range", n)) // want:panicmsg
}

func dynamicValue(err error) {
	panic(err) // want:panicmsg
}

func suppressed(err error) {
	//lint:ignore panicmsg re-panic of an already-attributed error
	panic(err)
}
