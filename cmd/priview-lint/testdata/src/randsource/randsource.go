// Package randdemo is a golden-file fixture for the randsource
// analyzer: it is loaded under an import path OUTSIDE the allowed set,
// so the math/rand import and the wall-clock seed must both be flagged,
// while the //lint:ignore'd seed must not.
package randdemo

import (
	"math/rand" // want:randsource
	"time"
)

func timeSeeded() float64 {
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want:randsource
	return r.Float64()
}

func suppressedSeed() float64 {
	//lint:ignore randsource fixture demonstrating an explicitly waived wall-clock seed
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	return r.Float64()
}

func fixedSeed() float64 {
	// A fixed seed is fine for the seed check; the import finding above
	// still covers this package.
	return rand.New(rand.NewSource(7)).Float64()
}
