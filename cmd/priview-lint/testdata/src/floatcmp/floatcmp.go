// Package floatdemo is a golden-file fixture for the floatcmp
// analyzer.
package floatdemo

func equal(a, b float64) bool {
	return a == b // want:floatcmp
}

func notEqual(a float32, b float32) bool {
	return a != b // want:floatcmp
}

func nanIdiom(x float64) bool {
	return x != x // the portable NaN test: not flagged
}

func intCompare(a, b int) bool {
	return a == b // integers: not flagged
}

// approxEqual is a tolerance helper by name, so its internal exact
// short-circuit is exempt.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp fixture demonstrating a documented exact comparison
	return a == b
}
