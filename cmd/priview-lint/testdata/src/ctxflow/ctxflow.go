// Seeded ctxflow violations. The test loads this directory under the
// import path priview/internal/reconstruct so the ctxflow-scope fact
// applies; only loops whose trip count depends on data (convergence
// loops, infinite pumps, huge constant caps) are candidates, and only
// those that never reach a ctx poll are findings.
package reconstruct

import "context"

// converge iterates to a tolerance and never looks at its context: a
// cancellation request cannot stop it.
func converge(ctx context.Context, x float64) float64 {
	delta := 1.0
	for delta > 1e-9 { // want:ctxflow
		delta *= 0.5
		x += delta
	}
	return x
}

// convergePolled checks ctx.Err() every sweep — clean.
func convergePolled(ctx context.Context, x float64) float64 {
	delta := 1.0
	for delta > 1e-9 {
		if ctx.Err() != nil {
			return x
		}
		delta *= 0.5
		x += delta
	}
	return x
}

// checkCtx is a poll helper; the engine's summaries must carry its
// poll through the call graph.
func checkCtx(ctx context.Context) bool {
	return ctx.Err() != nil
}

// convergeHelper polls through checkCtx — clean, but only an
// interprocedural analysis can tell.
func convergeHelper(ctx context.Context, x float64) float64 {
	delta := 1.0
	for delta > 1e-9 {
		if checkCtx(ctx) {
			return x
		}
		delta *= 0.5
		x += delta
	}
	return x
}

// pump loops forever without a poll.
func pump(ctx context.Context, ch chan float64) {
	for { // want:ctxflow
		ch <- 1.0
	}
}

// pumpPolled selects on ctx.Done() — clean.
func pumpPolled(ctx context.Context, ch chan float64) {
	for {
		select {
		case <-ctx.Done():
			return
		case ch <- 1.0:
		}
	}
}

// sweep hides an effectively unbounded loop behind a "constant" cap of
// a million iterations.
func sweep(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for i := 0; i < 1<<20; i++ { // want:ctxflow
		s += 1.0
	}
	return s
}

// boundedByLen is bounded by its input — clean.
func boundedByLen(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

// smallCap finishes in microseconds — clean.
func smallCap(ctx context.Context) int {
	n := 0
	for i := 0; i < 64; i++ {
		n++
	}
	return n
}
