// Seeded budgetlit violations: literal ε/δ handed to noise primitives
// or core.Config outside the cmd/ flag-parsing boundary. The clean path
// draws its budget from the internal/privacy accountant.
package budgetdemo

import (
	"priview/internal/core"
	"priview/internal/noise"
	"priview/internal/privacy"
)

// scaleFromLiteral hardcodes ε at the mechanism call.
func scaleFromLiteral() float64 {
	return noise.LaplaceMechScale(1.0, 0.5) // want:budgetlit
}

// scaleFromVar hides the literal behind one local variable; the
// one-level indirection must not launder it.
func scaleFromVar() float64 {
	eps := 0.5
	return noise.LaplaceMechScale(1.0, eps) // want:budgetlit
}

// sigmaFromLiteral hardcodes both ε and δ.
func sigmaFromLiteral() float64 {
	return noise.GaussianMechSigma(1.0, 0.5, 1e-6) // want:budgetlit want:budgetlit
}

// configLiteral pins the budget in a Config composite literal.
func configLiteral() core.Config {
	return core.Config{Epsilon: 1.0} // want:budgetlit
}

// fieldAssign pins the budget through a field write.
func fieldAssign(c *core.Config) {
	c.Epsilon = 0.25 // want:budgetlit
}

// fromAccountant draws ε from the accountant — the sanctioned path.
func fromAccountant(acct *privacy.Accountant) float64 {
	eps := acct.Remaining()
	return noise.LaplaceMechScale(1.0, eps)
}

// configFromAccountant threads accountant budget into the Config.
func configFromAccountant(acct *privacy.Accountant) core.Config {
	return core.Config{Epsilon: acct.Remaining()}
}
