// Package noise is a fixture loaded AS priview/internal/noise, one of
// the packages allowed to import math/rand — so the import must not be
// flagged, but wall-clock seeding must still be.
package noise

import (
	"math/rand"
	"time"
)

func allowedImport() float64 {
	return rand.New(rand.NewSource(7)).Float64()
}

func stillNoWallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want:randsource
}
