// Package privflowdemo seeds a raw-count→HTTP leak for the privflow
// analyzer: a marginal pulled straight from the dataset travels through
// two helpers and reaches a ResponseWriter without ever meeting
// internal/noise. The noised paths alongside it must stay clean.
package privflowdemo

import (
	"net/http"
	"strconv"

	"priview/internal/dataset"
	"priview/internal/marginal"
	"priview/internal/noise"
)

// rawCount pulls an un-noised marginal out of the dataset — the taint
// source (hop 1).
func rawCount(d *dataset.Dataset, attrs []int) *marginal.Table {
	return d.Marginal(attrs)
}

// render serializes whatever table it is given — an innocent-looking
// middle hop (hop 2).
func render(t *marginal.Table) []byte {
	return []byte(strconv.FormatFloat(t.Total(), 'g', -1, 64))
}

// handleLeak publishes the raw count: the seeded leak. The trace must
// span rawCount → render → ResponseWriter.Write.
func handleLeak(d *dataset.Dataset, w http.ResponseWriter, r *http.Request) {
	t := rawCount(d, []int{0, 1})
	if _, err := w.Write(render(t)); err != nil { // want:privflow
		return
	}
}

// handleNoised applies Laplace noise before publishing — clean.
func handleNoised(d *dataset.Dataset, src noise.Source, w http.ResponseWriter, r *http.Request) {
	t := rawCount(d, []int{0, 1})
	t.AddLaplace(src, 2.0)
	if _, err := w.Write(render(t)); err != nil {
		return
	}
}

// handleCopy publishes a NoisyCopy and keeps the raw original private —
// clean.
func handleCopy(d *dataset.Dataset, src noise.Source, w http.ResponseWriter, r *http.Request) {
	t := rawCount(d, []int{0})
	n := t.NoisyCopy(src, 2.0)
	if _, err := w.Write(render(n)); err != nil {
		return
	}
}

// publishDirect leaks without any helper hops: source and sink in one
// function.
func publishDirect(d *dataset.Dataset, w http.ResponseWriter) {
	if _, err := w.Write(render(d.FullContingency())); err != nil { // want:privflow
		return
	}
}

// noisyTotal demonstrates the additive-noise rule: a raw count plus a
// Laplace draw is a noised quantity — clean.
func noisyTotal(d *dataset.Dataset, src noise.Source, w http.ResponseWriter) {
	total := float64(d.Len()) + noise.Laplace(src, 2.0)
	if _, err := w.Write([]byte(strconv.FormatFloat(total, 'g', -1, 64))); err != nil {
		return
	}
}
