// Package attrsetdemo exercises the attrset analyzer: hand-rolled
// bitmask building and membership tests must be flagged, while
// bit-gather shifts, size computations and constant bit positions must
// not.
package attrsetdemo

// buildMask accumulates a set mask by hand — the idiom internal/attrset
// replaced.
func buildMask(attrs []int) uint64 {
	var m uint64
	for _, a := range attrs {
		m |= 1 << uint(a) // want:attrset
	}
	return m
}

// buildMaskConverted uses an explicit conversion on the shiftee.
func buildMaskConverted(attrs []int) uint64 {
	var m uint64
	for _, a := range attrs {
		m |= uint64(1) << uint(a) // want:attrset
	}
	return m
}

// remove drops a list of attributes by hand.
func remove(m uint64, attrs []int) uint64 {
	for _, a := range attrs {
		m &^= 1 << uint(a) // want:attrset
	}
	return m
}

// containsAll tests membership by hand while walking an attribute list.
func containsAll(m uint64, attrs []int) bool {
	for _, a := range attrs {
		if m&(1<<uint(a)) == 0 { // want:attrset
			return false
		}
	}
	return true
}

// packRecord builds a data record word: the shift amount is a loop
// counter over positions, not a ranged attribute value, so it stays
// legal even though it looks like mask accumulation.
func packRecord(bits []bool) uint64 {
	var rec uint64
	for j := 0; j < len(bits); j++ {
		if bits[j] {
			rec |= 1 << uint(j)
		}
	}
	return rec
}

// tableSize computes 2^dim as a cell count: a shift of 1 that is not
// combined into a mask, so it stays legal.
func tableSize(dim int) int {
	return 1 << uint(dim)
}

// gather is the RestrictIndex-style bit gather: the shiftee is a
// extracted bit, not the constant 1.
func gather(idx int, pos []int) int {
	out := 0
	for j, p := range pos {
		out |= ((idx >> uint(p)) & 1) << uint(j)
	}
	return out
}

// fixedFlag sets a compile-time-constant bit position — a flags word,
// not an attribute set.
func fixedFlag(m uint64) uint64 {
	m |= 1 << 3
	return m
}
