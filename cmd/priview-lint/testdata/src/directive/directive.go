// Package directivedemo holds malformed suppression directives; the
// driver must flag them rather than silently honoring or dropping them.
package directivedemo

//lint:ignore floatcmp
func missingReason() {}

//lint:ignore nosuchcheck the check name does not exist
func unknownCheck() {}
