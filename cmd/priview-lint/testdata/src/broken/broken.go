// A deliberately uncompilable package: the driver must refuse to
// analyze it and exit with status 3, printing the type error.
package broken

func oops() int {
	return undefinedSymbol
}
