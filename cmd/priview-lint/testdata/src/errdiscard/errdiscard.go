// Package errdemo is a golden-file fixture for the errdiscard
// analyzer.
package errdemo

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func droppedStatement() {
	os.Remove("scratch") // want:errdiscard
}

func blankAssign() {
	_ = os.Remove("scratch") // want:errdiscard
}

func blankInTuple() string {
	data, _ := os.ReadFile("scratch") // want:errdiscard
	return string(data)
}

func deferredClose() error {
	f, err := os.Open("scratch")
	if err != nil {
		return err
	}
	defer f.Close() // deferred: accepted idiom, not flagged
	return nil
}

func vestigialErrors() string {
	var b bytes.Buffer
	var sb strings.Builder
	b.WriteString("buffer writes never fail")
	sb.WriteString("builder writes never fail")
	fmt.Println("stdout printing is conventionally unchecked")
	fmt.Fprintf(os.Stderr, "as is stderr\n")
	fmt.Fprintf(&b, "and in-memory writers\n")
	return b.String() + sb.String()
}

func suppressed() {
	//lint:ignore errdiscard best-effort cleanup; the file may not exist
	os.Remove("scratch")
}
