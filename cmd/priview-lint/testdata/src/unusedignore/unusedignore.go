// One used and one stale //lint:ignore directive: the stale one must
// itself be reported once the full analyzer set has run.
package ignoredemo

// equalish really does compare floats; the suppression is exercised.
func equalish(a, b float64) bool {
	//lint:ignore floatcmp demo of a justified suppression; the caller quantizes first
	return a == b
}

// plain never triggers floatcmp, so its directive suppresses nothing.
func plain(a, b int) bool {
	//lint:ignore floatcmp integers compare exactly; this directive is stale // want:directive
	return a == b
}
