// Seeded hotalloc violations: allocation and boxing sites inside loops
// marked //lint:hot. Unmarked loops may allocate freely.
package hotdemo

// box exists to receive an interface argument; passing a concrete
// float64 to it boxes (allocates).
func box(v interface{}) {}

type point struct{ x, y float64 }

// sink keeps otherwise-dead values alive so the testdata compiles.
var sink interface{}

func hotLoop(xs []float64, m map[int]float64) float64 {
	acc := 0.0
	//lint:hot
	for i := range xs {
		buf := make([]float64, 4) // want:hotalloc
		buf[0] = xs[i]
		acc += buf[0]
		m[i] = xs[i]                        // want:hotalloc
		p := point{x: xs[i]}                // want:hotalloc
		f := func() float64 { return acc }  // want:hotalloc
		box(xs[i])                          // want:hotalloc
		sink = interface{}(p.x + f() + acc) // want:hotalloc
	}
	return acc
}

func hotAppend(xs []float64) []float64 {
	var out []float64
	//lint:hot
	for _, v := range xs {
		out = append(out, v) // want:hotalloc
	}
	return out
}

// hotClean is marked hot and allocation-free — no findings.
func hotClean(xs []float64) float64 {
	acc := 0.0
	//lint:hot
	for i := 0; i < len(xs); i++ {
		acc += xs[i] * xs[i]
	}
	return acc
}

// cold allocates in an unmarked loop — out of scope.
func cold(xs []float64) []float64 {
	var out []float64
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
