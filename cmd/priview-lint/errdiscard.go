package main

import (
	"go/ast"
	"go/types"
	"strings"
)

var errdiscardAnalyzer = &Analyzer{
	Name: "errdiscard",
	Doc:  "no silently discarded error returns in library code; a dropped error is a dropped accounting failure",
	Run:  runErrdiscard,
}

func runErrdiscard(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pass.Info, call) || errNeverFails(pass.Info, call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"result of %s includes an error that is discarded; handle it or suppress with //lint:ignore errdiscard <reason>", calleeLabel(pass.Info, call))
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, stmt)
			case *ast.DeferStmt, *ast.GoStmt:
				// defer x.Close() and friends are accepted idiom; the
				// error has nowhere to go.
				return false
			}
			return true
		})
	}
}

// checkBlankErrAssign flags error results assigned to the blank
// identifier, e.g. `_ = f()` or `v, _ := g()` where g's second result
// is an error.
func checkBlankErrAssign(pass *Pass, stmt *ast.AssignStmt) {
	flag := func(lhs ast.Expr, call ast.Expr) {
		pass.Reportf(lhs.Pos(),
			"error result of %s assigned to _; handle it or suppress with //lint:ignore errdiscard <reason>", exprLabel(call))
	}
	if len(stmt.Lhs) > 1 && len(stmt.Rhs) == 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok || errNeverFails(pass.Info, call) {
			return
		}
		tuple, ok := pass.Info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(stmt.Lhs) {
			return
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				flag(lhs, call)
			}
		}
		return
	}
	for i, lhs := range stmt.Lhs {
		if i >= len(stmt.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := ast.Unparen(stmt.Rhs[i])
		call, ok := rhs.(*ast.CallExpr)
		if !ok || errNeverFails(pass.Info, call) {
			continue
		}
		if tv, ok := pass.Info.Types[rhs]; ok && tv.Type != nil && isErrorType(tv.Type) {
			flag(lhs, rhs)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// returnsError reports whether any of the call's results is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// errNeverFails whitelists callees whose error result is vestigial:
// bytes.Buffer and strings.Builder writes are documented to always
// return a nil error, and fmt printing to the process's standard
// streams follows the universal Go convention of being unchecked.
func errNeverFails(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	if strings.HasPrefix(full, "(*bytes.Buffer).") || strings.HasPrefix(full, "(*strings.Builder).") {
		return true
	}
	switch full {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		return true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		return writerNeverFails(info, call.Args[0])
	}
	return false
}

// writerNeverFails reports whether the io.Writer argument is one whose
// Write cannot meaningfully be handled: an in-memory buffer/builder, or
// the process's own stdout/stderr.
func writerNeverFails(info *types.Info, w ast.Expr) bool {
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok {
			if pkg := v.Pkg(); pkg != nil && pkg.Path() == "os" &&
				(v.Name() == "Stdout" || v.Name() == "Stderr") {
				return true
			}
		}
	}
	tv, ok := info.Types[w]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.String() {
	case "*bytes.Buffer", "*strings.Builder":
		return true
	}
	return false
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return exprLabel(call)
}

func exprLabel(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if name := calleeName(call); name != "" {
			return name
		}
	}
	return "call"
}
