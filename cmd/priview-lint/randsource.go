package main

import (
	"go/ast"
	"go/types"
	"strconv"
)

// randsourceAllowed lists the only packages permitted to import
// math/rand: the noise layer (which wraps it behind noise.Source /
// noise.Stream so every draw is attributable to a privacy budget) and
// the synthetic-data generators (which model public data, not private
// records).
var randsourceAllowed = map[string]bool{
	"priview/internal/noise":         true,
	"priview/internal/dataset/synth": true,
}

var randsourceAnalyzer = &Analyzer{
	Name: "randsource",
	Doc:  "privacy-critical randomness must flow through internal/noise: no math/rand imports elsewhere, no wall-clock seeding anywhere",
	Run:  runRandsource,
}

func runRandsource(pass *Pass) {
	for _, f := range pass.Files {
		if !randsourceAllowed[pass.Path] {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(),
						"import of %s outside internal/noise and internal/dataset/synth; draw randomness from a noise.Source so it is attributable to a privacy budget", path)
				}
			}
		}
		// Wall-clock seeding is forbidden everywhere, including the
		// allowed packages: a time-seeded stream cannot be replayed, so
		// a privacy-accounting bug in it cannot be reproduced.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch name {
			case "Seed", "NewSource", "NewStream":
			default:
				return true
			}
			for _, arg := range call.Args {
				if at, found := findTimeNow(pass.Info, arg); found {
					pass.Reportf(at.Pos(),
						"%s seeded from time.Now: wall-clock seeds make privacy-critical randomness unreproducible; use a fixed experiment seed or noise.CryptoSource", name)
				}
			}
			return true
		})
	}
}

// calleeName returns the bare name of a call's callee (F or x.F).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// findTimeNow reports whether expr contains a call to time.Now,
// resolved through the type checker so import renaming cannot hide it.
func findTimeNow(info *types.Info, expr ast.Expr) (ast.Node, bool) {
	var at ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		if at != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "time.Now" {
			at = call
			return false
		}
		return true
	})
	return at, at != nil
}
