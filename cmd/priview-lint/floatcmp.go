package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var floatcmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "no ==/!= between floating-point operands outside tolerance helpers; exact comparison hides accumulated rounding error",
	Run:  runFloatcmp,
}

// toleranceHelperNames marks function names that ARE the approved
// tolerance/exactness helpers: inside them an exact comparison is the
// point (e.g. an approx(a, b, tol) helper short-circuiting on a == b).
func isToleranceHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"approx", "almost", "within", "toleran", "close"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

func runFloatcmp(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isToleranceHelper(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.Info, bin.X) || !isFloat(pass.Info, bin.Y) {
					return true
				}
				// x != x is the portable NaN test; leave it alone.
				if s := exprString(bin.X); bin.Op == token.NEQ && s != "" && s == exprString(bin.Y) {
					return true
				}
				pass.Reportf(bin.OpPos,
					"floating-point %s comparison; use a tolerance (e.g. math.Abs(a-b) <= eps) or suppress with //lint:ignore floatcmp <why exactness is sound>", bin.Op)
				return true
			})
		}
	}
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprString renders a simple expression for the x != x NaN-idiom
// check; only identifiers and selectors need to match.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return ""
}
