package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes stdlib type-checking (the expensive part of
// the source importer) across the golden-file tests.
var sharedLoader = sync.OnceValues(func() (*loader, error) {
	return newLoader(filepath.Join("..", ".."))
})

func loadTestdata(t *testing.T, dir, importPath string) *lintPackage {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading testdata/src/%s: %v", dir, err)
	}
	return pkg
}

// wantRe matches the expectation comments embedded in testdata files:
// a `// want:<check>` marker on the line the finding must land on.
var wantRe = regexp.MustCompile(`// want:([a-z]+)`)

// expectations scans a testdata directory for want markers, returning
// "file:line:check" keys.
func expectations(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	full := filepath.Join("testdata", "src", dir)
	names, err := goFilesIn(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(full, name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", name, i+1, m[1])] = true
			}
		}
	}
	return want
}

// checkGolden runs every analyzer over one testdata package and
// requires the surviving findings to match the want markers exactly —
// both directions: no missing findings, no unexpected ones.
func checkGolden(t *testing.T, dir, importPath string) {
	t.Helper()
	pkg := loadTestdata(t, dir, importPath)
	want := expectations(t, dir)
	got := make(map[string]bool)
	for _, f := range runAnalyzers(pkg) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)] = true
	}
	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	if len(missing) > 0 {
		t.Errorf("expected findings not reported: %v", missing)
	}
	if len(unexpected) > 0 {
		t.Errorf("unexpected findings: %v", unexpected)
	}
}

func TestRandsourceGolden(t *testing.T) {
	checkGolden(t, "randsource", "priview/internal/randdemo")
}

func TestRandsourceAllowedPackage(t *testing.T) {
	// Loaded as internal/noise itself: the import is allowed, the
	// wall-clock seed still is not.
	checkGolden(t, "randsource_ok", "priview/internal/noise")
}

func TestFloatcmpGolden(t *testing.T) {
	checkGolden(t, "floatcmp", "priview/internal/floatdemo")
}

func TestErrdiscardGolden(t *testing.T) {
	checkGolden(t, "errdiscard", "priview/internal/errdemo")
}

func TestPanicmsgGolden(t *testing.T) {
	checkGolden(t, "panicmsg", "priview/internal/panicdemo")
}

func TestAttrsetGolden(t *testing.T) {
	checkGolden(t, "attrset", "priview/internal/attrsetdemo")
}

func TestAttrsetAllowedPackage(t *testing.T) {
	// The same offending shapes loaded as internal/attrset itself: the
	// canonical implementation is exempt, so nothing may be reported.
	pkg := loadTestdata(t, "attrset", "priview/internal/attrset")
	for _, f := range runAnalyzers(pkg) {
		if f.Check == "attrset" {
			t.Errorf("attrset finding inside the attrset package itself: %v", f)
		}
	}
}

func TestMalformedDirectives(t *testing.T) {
	pkg := loadTestdata(t, "directive", "priview/internal/directivedemo")
	findings := runAnalyzers(pkg)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Check != "directive" {
			t.Errorf("finding %v: check = %q, want \"directive\"", f, f.Check)
		}
	}
	if !strings.Contains(findings[0].Message, "non-empty reason") {
		t.Errorf("first finding should flag the missing reason, got %q", findings[0].Message)
	}
	if !strings.Contains(findings[1].Message, "unknown check") {
		t.Errorf("second finding should flag the unknown check, got %q", findings[1].Message)
	}
}

// TestLintMainJSON drives the CLI entry point end to end on a testdata
// package: findings must come back as valid JSON and the exit code must
// signal violations.
func TestLintMainJSON(t *testing.T) {
	stdout, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	stderr, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer stderr.Close()

	code := lintMain([]string{"-json", "cmd/priview-lint/testdata/src/floatcmp"}, stdout, stderr)
	if code != 1 {
		data, _ := os.ReadFile(stderr.Name())
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, data)
	}
	data, err := os.ReadFile(stdout.Name())
	if err != nil {
		t.Fatal(err)
	}
	var findings []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, data)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d JSON findings, want 2: %+v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Check != "floatcmp" {
			t.Errorf("finding %+v: check = %q, want floatcmp", f, f.Check)
		}
	}
}

func TestListAnalyzers(t *testing.T) {
	stdout, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	if code := lintMain([]string{"-list"}, stdout, stdout); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	data, err := os.ReadFile(stdout.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analyzers {
		if !strings.Contains(string(data), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}
