package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes stdlib import resolution across the
// golden-file tests. Testdata packages loaded under their own demo
// import paths share it; packages that impersonate a real module path
// (internal/noise, internal/attrset, internal/reconstruct) must use an
// isolated loader so the impersonation cannot collide with the real
// package pulled in as a dependency of another test's testdata.
var sharedLoader = sync.OnceValues(func() (*loader, error) {
	return newLoader(filepath.Join("..", ".."))
})

var sharedFacts = sync.OnceValues(func() (*factsTable, error) {
	return loadFacts(filepath.Join("..", "..", "lint.facts"))
})

func testFacts(t *testing.T) *factsTable {
	t.Helper()
	facts, err := sharedFacts()
	if err != nil {
		t.Fatalf("lint.facts: %v", err)
	}
	return facts
}

// loadTestdata loads one testdata package plus an engine over
// everything the chosen loader has seen so far.
func loadTestdata(t *testing.T, dir, importPath string, isolated bool) (*lintPackage, *engine) {
	t.Helper()
	var l *loader
	var err error
	if isolated {
		l, err = newLoader(filepath.Join("..", ".."))
	} else {
		l, err = sharedLoader()
	}
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading testdata/src/%s: %v", dir, err)
	}
	return pkg, newEngine(testFacts(t), l.fset, l.allInOrder())
}

// wantRe matches the expectation comments embedded in testdata files:
// a `// want:<check>` marker on the line the finding must land on.
var wantRe = regexp.MustCompile(`// want:([a-z]+)`)

// expectations scans a testdata directory for want markers, returning
// "file:line:check" keys.
func expectations(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	full := filepath.Join("testdata", "src", dir)
	names, err := goFilesIn(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(full, name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", name, i+1, m[1])] = true
			}
		}
	}
	return want
}

// checkGolden runs every analyzer (with the whole-program engine) over
// one testdata package and requires the surviving findings to match the
// want markers exactly — both directions: no missing findings, no
// unexpected ones.
func checkGolden(t *testing.T, dir, importPath string, isolated bool) []Finding {
	t.Helper()
	pkg, eng := loadTestdata(t, dir, importPath, isolated)
	want := expectations(t, dir)
	findings := runAnalyzers(pkg, eng)
	got := make(map[string]bool)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)] = true
	}
	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	if len(missing) > 0 {
		t.Errorf("expected findings not reported: %v", missing)
	}
	if len(unexpected) > 0 {
		t.Errorf("unexpected findings: %v", unexpected)
	}
	return findings
}

func TestRandsourceGolden(t *testing.T) {
	checkGolden(t, "randsource", "priview/internal/randdemo", false)
}

func TestRandsourceAllowedPackage(t *testing.T) {
	// Loaded as internal/noise itself: the import is allowed, the
	// wall-clock seed still is not.
	checkGolden(t, "randsource_ok", "priview/internal/noise", true)
}

func TestFloatcmpGolden(t *testing.T) {
	checkGolden(t, "floatcmp", "priview/internal/floatdemo", false)
}

func TestErrdiscardGolden(t *testing.T) {
	checkGolden(t, "errdiscard", "priview/internal/errdemo", false)
}

func TestPanicmsgGolden(t *testing.T) {
	checkGolden(t, "panicmsg", "priview/internal/panicdemo", false)
}

func TestAttrsetGolden(t *testing.T) {
	checkGolden(t, "attrset", "priview/internal/attrsetdemo", false)
}

func TestAttrsetAllowedPackage(t *testing.T) {
	// The same offending shapes loaded as internal/attrset itself: the
	// canonical implementation is exempt, so nothing may be reported.
	pkg, eng := loadTestdata(t, "attrset", "priview/internal/attrset", true)
	for _, f := range runAnalyzers(pkg, eng) {
		if f.Check == "attrset" {
			t.Errorf("attrset finding inside the attrset package itself: %v", f)
		}
	}
}

func TestPrivflowGolden(t *testing.T) {
	checkGolden(t, "privflow", "priview/internal/privflowdemo", false)
}

// TestPrivflowTrace pins the multi-hop trace on the seeded leak: the
// finding must walk from the dataset source through the helper chain to
// the HTTP sink.
func TestPrivflowTrace(t *testing.T) {
	pkg, eng := loadTestdata(t, "privflow", "priview/internal/privflowdemo", false)
	findings := runAnalyzers(pkg, eng)
	var leak *Finding
	for i := range findings {
		if findings[i].Check == "privflow" && findings[i].Pos.Line == 32 {
			leak = &findings[i]
		}
	}
	if leak == nil {
		t.Fatalf("no privflow finding on the seeded handleLeak line; got %v", findings)
	}
	if len(leak.Trace) < 3 {
		t.Fatalf("trace has %d hops, want >= 3 (source, helper, sink): %v", len(leak.Trace), leak.Trace)
	}
	joined := strings.Join(leak.Trace, "\n")
	for _, needle := range []string{"Marginal", "rawCount", "published by"} {
		if !strings.Contains(joined, needle) {
			t.Errorf("trace missing %q:\n%s", needle, joined)
		}
	}
	if !strings.Contains(leak.Trace[0], "raw data from") {
		t.Errorf("trace should start at the raw source, got %q", leak.Trace[0])
	}
}

func TestCtxflowGolden(t *testing.T) {
	// Impersonates internal/reconstruct so the ctxflow-scope fact
	// applies; isolated loader keeps the impersonation out of the shared
	// cache.
	checkGolden(t, "ctxflow", "priview/internal/reconstruct", true)
}

func TestBudgetlitGolden(t *testing.T) {
	checkGolden(t, "budgetlit", "priview/internal/budgetdemo", false)
}

func TestHotallocGolden(t *testing.T) {
	checkGolden(t, "hotalloc", "priview/internal/hotdemo", false)
}

func TestUnusedIgnoreGolden(t *testing.T) {
	checkGolden(t, "unusedignore", "priview/internal/ignoredemo", false)
}

func TestMalformedDirectives(t *testing.T) {
	// nil engine: directive-syntax findings must not depend on the
	// dataflow analyzers having run.
	pkg, _ := loadTestdata(t, "directive", "priview/internal/directivedemo", false)
	findings := runAnalyzers(pkg, nil)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Check != "directive" {
			t.Errorf("finding %v: check = %q, want \"directive\"", f, f.Check)
		}
	}
	if !strings.Contains(findings[0].Message, "non-empty reason") {
		t.Errorf("first finding should flag the missing reason, got %q", findings[0].Message)
	}
	if !strings.Contains(findings[1].Message, "unknown check") {
		t.Errorf("second finding should flag the unknown check, got %q", findings[1].Message)
	}
}

// TestLintMainJSON drives the CLI entry point end to end on a testdata
// package: findings must come back as valid JSON and the exit code must
// signal violations.
func TestLintMainJSON(t *testing.T) {
	stdout, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	stderr, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer stderr.Close()

	code := lintMain([]string{"-json", "cmd/priview-lint/testdata/src/floatcmp"}, stdout, stderr)
	if code != exitDirty {
		data, _ := os.ReadFile(stderr.Name())
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitDirty, data)
	}
	data, err := os.ReadFile(stdout.Name())
	if err != nil {
		t.Fatal(err)
	}
	var findings []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, data)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d JSON findings, want 2: %+v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Check != "floatcmp" {
			t.Errorf("finding %+v: check = %q, want floatcmp", f, f.Check)
		}
	}
}

// TestLoadErrorExit3 feeds the driver a package that cannot compile:
// the exit code must be 3 and stderr must carry a positioned diagnostic
// naming the broken file.
func TestLoadErrorExit3(t *testing.T) {
	stdout, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	stderr, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer stderr.Close()

	code := lintMain([]string{"cmd/priview-lint/testdata/src/broken"}, stdout, stderr)
	if code != exitLoad {
		t.Fatalf("exit code = %d, want %d", code, exitLoad)
	}
	data, err := os.ReadFile(stderr.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "load failed") {
		t.Errorf("stderr should announce the failed load, got:\n%s", out)
	}
	if !strings.Contains(out, "broken.go") {
		t.Errorf("stderr should name the broken file, got:\n%s", out)
	}
	if !strings.Contains(out, "undefinedSymbol") {
		t.Errorf("stderr should carry the type error, got:\n%s", out)
	}
}

// TestPermutationInvariance is the determinism property test: linting
// the same packages in any command-line (and therefore load) order must
// produce byte-identical output and the same exit code.
func TestPermutationInvariance(t *testing.T) {
	pkgs := []string{
		"cmd/priview-lint/testdata/src/floatcmp",
		"cmd/priview-lint/testdata/src/panicmsg",
		"cmd/priview-lint/testdata/src/attrset",
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var first []byte
	firstCode := -1
	for _, p := range perms {
		args := []string{"-json"}
		for _, i := range p {
			args = append(args, pkgs[i])
		}
		stdout, err := os.CreateTemp(t.TempDir(), "stdout")
		if err != nil {
			t.Fatal(err)
		}
		code := lintMain(args, stdout, stdout)
		data, err := os.ReadFile(stdout.Name())
		stdout.Close()
		if err != nil {
			t.Fatal(err)
		}
		if firstCode == -1 {
			first, firstCode = data, code
			if code != exitDirty {
				t.Fatalf("baseline permutation exited %d, want %d:\n%s", code, exitDirty, data)
			}
			continue
		}
		if code != firstCode {
			t.Errorf("permutation %v: exit code %d, want %d", p, code, firstCode)
		}
		if string(data) != string(first) {
			t.Errorf("permutation %v: output differs from baseline\n--- baseline ---\n%s\n--- got ---\n%s", p, first, data)
		}
	}
}

func TestListAnalyzers(t *testing.T) {
	stdout, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	if code := lintMain([]string{"-list"}, stdout, stdout); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	data, err := os.ReadFile(stdout.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analyzers {
		if !strings.Contains(string(data), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}
