package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"priview"
	"priview/internal/core"
	"priview/internal/server"
	"priview/internal/snapshot"
)

// buildSyn returns a small synopsis with a seed-dependent content.
func buildSyn(t *testing.T, seed int64) *core.Synopsis {
	t.Helper()
	const d = 6
	records := make([]uint64, 200)
	for i := range records {
		records[i] = uint64(i*2654435761) & ((1 << d) - 1)
	}
	data := priview.NewDataset(d, records)
	plan := priview.PlanDesign(d, data.Len(), 1.0, 1)
	return priview.Build(data, priview.Config{Epsilon: 1.0, Design: plan.Design}, seed)
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestStoreModeServesNewestSnapshot exercises -store end to end:
// loading picks the newest snapshot, and the audit gate runs.
func TestStoreModeServesNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(buildSyn(t, 1)); err != nil {
		t.Fatal(err)
	}
	want := buildSyn(t, 2)
	if _, err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	src := &source{dir: dir}
	syn, from, err := src.load()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(from) != "snapshot-000002.json" {
		t.Fatalf("loaded %s, want the newest snapshot", from)
	}
	if math.Abs(syn.Total()-want.Total()) > 1e-9 {
		t.Fatalf("total %v, want %v", syn.Total(), want.Total())
	}
}

// TestHotReloadKeepsServingThroughCorruption is the serving half of the
// durability contract: a SIGHUP-triggered reload that encounters a
// corrupt newest snapshot falls back to the good one; a reload with the
// whole store corrupted fails without touching the served synopsis. At
// no point does any query fail.
func TestHotReloadKeepsServingThroughCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.NewStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	first := buildSyn(t, 3)
	if _, err := st.Save(first); err != nil {
		t.Fatal(err)
	}
	src := &source{dir: dir}
	syn, _, err := src.load()
	if err != nil {
		t.Fatal(err)
	}
	// Serve with the query cache on, the default deployment: each reload
	// must wrap the new synopsis in a fresh cache.
	cc := cacheConfig{entries: 64, bytes: 1 << 20}
	swap := server.NewSwappable(cc.wrap(syn))
	handler := server.NewWithOptions(swap, server.Options{MaxK: 6})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	failed := 0
	query := func() (total float64) {
		t.Helper()
		var body struct {
			Total float64   `json:"total"`
			Cells []float64 `json:"cells"`
		}
		if code := getJSON(t, srv.URL+"/v1/marginal?attrs=0,1", &body); code != http.StatusOK {
			failed++
			t.Errorf("query failed with status %d", code)
		}
		return body.Total
	}
	query()

	// Publish a second synopsis and hot-reload: new total served.
	second := buildSyn(t, 4)
	secondPath, err := st.Save(second)
	if err != nil {
		t.Fatal(err)
	}
	if err := reload(context.Background(), src, swap, cc); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := query(); math.Abs(got-second.Total()) > 1e-6 {
		t.Fatalf("after reload total = %v, want %v", got, second.Total())
	}
	// The reloaded synopsis answers from a fresh cache: exactly the one
	// miss from the query above, nothing inherited from the old cache.
	if st, enabled := swap.CacheStats(); !enabled || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cache after reload = %+v (enabled=%v), want a fresh cache with 1 miss", st, enabled)
	}

	// Corrupt the newest snapshot; reload must fall back to the first.
	if err := os.WriteFile(secondPath, []byte(`{"format":"priview-synopsis-v2","checksum":"sha256:00","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reload(context.Background(), src, swap, cc); err != nil {
		t.Fatalf("reload with fallback available: %v", err)
	}
	if got := query(); math.Abs(got-first.Total()) > 1e-6 {
		t.Fatalf("after corrupt reload total = %v, want fallback %v", got, first.Total())
	}
	if _, err := os.Stat(secondPath + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}

	// Corrupt everything; reload fails but the last good synopsis keeps
	// serving.
	names, err := st.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := reload(context.Background(), src, swap, cc); err == nil {
		t.Fatal("reload succeeded with a fully corrupt store")
	}
	if got := query(); math.Abs(got-first.Total()) > 1e-6 {
		t.Fatalf("after failed reload total = %v, want unchanged %v", got, first.Total())
	}
	if failed != 0 {
		t.Fatalf("%d queries failed across the corruption sequence, want 0", failed)
	}
}

// TestLoadSynopsisRefusesAuditFailure proves the startup audit gate: a
// structurally valid file whose views are mutually inconsistent is
// refused.
func TestLoadSynopsisRefusesAuditFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	// Views disagree on attribute 1's marginal: 30/10 vs 20/20.
	doc := `{"format":"priview-synopsis-v1","epsilon":1,"total":40,"views":[` +
		`{"attrs":[0,1],"cells":[15,15,5,5]},{"attrs":[1,2],"cells":[10,10,10,10]}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSynopsis(path); err == nil {
		t.Fatal("loadSynopsis served an audit-failing synopsis")
	}
}

// TestLoadSynopsisAcceptsV2 proves the file mode reads the checksummed
// container.
func TestLoadSynopsisAcceptsV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "syn.json")
	if err := snapshot.WriteFile(snapshot.OS{}, path, buildSyn(t, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSynopsis(path); err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
}

// TestReloadRaceServesCleanly is the hot-reload race proof behind the
// SIGHUP contract: 12 query workers hammer the full middleware stack
// (recovery, shedding disabled so every answer must be a real 200,
// per-request deadline) while the main goroutine reloads the store 30
// times, half of them onto a freshly published snapshot. Run under
// -race this doubles as the data-race check on the swap/cache
// handoff; any non-200 — a 5xx from a torn swap most of all — fails.
func TestReloadRaceServesCleanly(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(buildSyn(t, 10)); err != nil {
		t.Fatal(err)
	}
	src := &source{dir: dir}
	syn, _, err := src.load()
	if err != nil {
		t.Fatal(err)
	}
	cc := cacheConfig{entries: 128, bytes: 1 << 20}
	swap := server.NewSwappable(cc.wrap(syn))
	handler := server.NewWithOptions(swap, server.Options{
		MaxK:         6,
		QueryTimeout: 10 * time.Second,
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/v1/marginal?attrs=%d,%d", (w+i)%6, (w+i+1+i%5)%6)
				if (w+i)%7 == 0 {
					path = "/v1/stats"
				}
				resp, err := client.Get(srv.URL + path)
				if err != nil {
					bad.Add(1)
					t.Errorf("worker %d: %v", w, err)
					return
				}
				//lint:ignore errdiscard draining a test response body
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
					t.Errorf("worker %d: %s = %d, want 200", w, path, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			if _, err := st.Save(buildSyn(t, int64(20+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := reload(ctx, src, swap, cc); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d queries failed across 30 hot reloads, want 0", n)
	}
}
