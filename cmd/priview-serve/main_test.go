package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"priview"
)

// buildSynopsisFile publishes a tiny synopsis the way `priview build`
// would, returning its path.
func buildSynopsisFile(t *testing.T) string {
	t.Helper()
	const d = 6
	records := make([]uint64, 200)
	for i := range records {
		records[i] = uint64(i*2654435761) & ((1 << d) - 1)
	}
	data := priview.NewDataset(d, records)
	plan := priview.PlanDesign(d, data.Len(), 1.0, 1)
	syn := priview.Build(data, priview.Config{Epsilon: 1.0, Design: plan.Design}, 42)

	path := filepath.Join(t.TempDir(), "synopsis.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeSmoke drives the command's own plumbing end to end: load a
// published synopsis from disk, assemble the server, and answer health
// and marginal queries over a real TCP socket.
func TestServeSmoke(t *testing.T) {
	syn, err := loadSynopsis(buildSynopsisFile(t))
	if err != nil {
		t.Fatalf("loadSynopsis: %v", err)
	}
	srv := newServer(syn, "127.0.0.1:0", 8)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	})

	base := "http://" + ln.Addr().String()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: status %d, body %q", code, body)
	}
	if code, body := get("/v1/marginal?attrs=0,1"); code != http.StatusOK {
		t.Errorf("/v1/marginal: status %d, body %q", code, body)
	}
}

func TestLoadSynopsisMissingFile(t *testing.T) {
	if _, err := loadSynopsis(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("loadSynopsis on a missing file should fail")
	}
}
