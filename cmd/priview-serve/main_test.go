package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"priview"
	"priview/internal/chaos"
	"priview/internal/core"
	"priview/internal/marginal"
	"priview/internal/server"
)

// buildSynopsisFile publishes a tiny synopsis the way `priview build`
// would, returning its path.
func buildSynopsisFile(t *testing.T) string {
	t.Helper()
	const d = 6
	records := make([]uint64, 200)
	for i := range records {
		records[i] = uint64(i*2654435761) & ((1 << d) - 1)
	}
	data := priview.NewDataset(d, records)
	plan := priview.PlanDesign(d, data.Len(), 1.0, 1)
	syn := priview.Build(data, priview.Config{Epsilon: 1.0, Design: plan.Design}, 42)

	path := filepath.Join(t.TempDir(), "synopsis.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeSmoke drives the command's own plumbing end to end: load a
// published synopsis from disk, wrap it in the query cache the way main
// does, assemble the server, and answer health, marginal and stats
// queries over a real TCP socket.
func TestServeSmoke(t *testing.T) {
	syn, err := loadSynopsis(buildSynopsisFile(t))
	if err != nil {
		t.Fatalf("loadSynopsis: %v", err)
	}
	cc := cacheConfig{entries: 128, bytes: 1 << 20}
	_, srv := newServer(cc.wrap(syn), "127.0.0.1:0", server.Options{MaxK: 8})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	})

	base := "http://" + ln.Addr().String()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: status %d, body %q", code, body)
	}
	if code, body := get("/v1/marginal?attrs=0,1"); code != http.StatusOK {
		t.Errorf("/v1/marginal: status %d, body %q", code, body)
	}
	// Same query again: served from the cache, visible in /v1/stats.
	if code, body := get("/v1/marginal?attrs=0,1"); code != http.StatusOK {
		t.Errorf("/v1/marginal repeat: status %d, body %q", code, body)
	}
	code, body := get("/v1/stats")
	if code != http.StatusOK {
		t.Errorf("/v1/stats: status %d, body %q", code, body)
	}
	for _, want := range []string{`"cache":true`, `"hits":1`, `"misses":1`} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/stats body %q missing %s", body, want)
		}
	}
}

// TestCacheConfigDisabled: both bounds ≤ 0 serve the synopsis bare.
func TestCacheConfigDisabled(t *testing.T) {
	syn, err := loadSynopsis(buildSynopsisFile(t))
	if err != nil {
		t.Fatalf("loadSynopsis: %v", err)
	}
	cc := cacheConfig{entries: 0, bytes: 0}
	if q := cc.wrap(syn); q != server.Querier(syn) {
		t.Errorf("disabled cacheConfig wrapped the synopsis in %T", q)
	}
}

func TestLoadSynopsisMissingFile(t *testing.T) {
	if _, err := loadSynopsis(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("loadSynopsis on a missing file should fail")
	}
}

// gatedQuerier signals when a query reaches the synopsis and holds it
// until released, so the shutdown test can deterministically have a
// request in flight while the server drains.
type gatedQuerier struct {
	server.Querier
	arrived chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedQuerier) QueryMethodContext(ctx context.Context, attrs []int, method core.ReconstructMethod) (*marginal.Table, error) {
	g.once.Do(func() { close(g.arrived) })
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Querier.QueryMethodContext(ctx, attrs, method)
}

// TestGracefulShutdownDrains proves the drain semantics: on shutdown
// the health probe flips to 503 while the listener still answers, an
// in-flight marginal query runs to completion rather than being cut,
// and Serve returns http.ErrServerClosed.
func TestGracefulShutdownDrains(t *testing.T) {
	syn, err := loadSynopsis(buildSynopsisFile(t))
	if err != nil {
		t.Fatalf("loadSynopsis: %v", err)
	}
	gated := &gatedQuerier{
		Querier: &chaos.SlowSynopsis{Querier: syn, Delay: 10 * time.Millisecond},
		arrived: make(chan struct{}),
		release: make(chan struct{}),
	}
	handler, srv := newServer(gated, "127.0.0.1:0", server.Options{MaxK: 8, QueryTimeout: 30 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		code int
		body string
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/marginal?attrs=0,1")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		inflight <- result{code: resp.StatusCode, body: string(body), err: err}
	}()

	select {
	case <-gated.arrived:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the synopsis")
	}

	// Pre-drain: the probe reports healthy. Draining: 503, while the
	// in-flight query is still being served.
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz before drain: %v %v", resp, err)
	} else if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	handler.SetDraining(true)
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: want 503, got %v %v", resp, err)
	} else if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- shutdown(srv, handler, 10*time.Second) }()
	// Let Shutdown close the listener and start waiting on the
	// in-flight connection before releasing the gated query.
	time.Sleep(50 * time.Millisecond)
	close(gated.release)

	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	res := <-inflight
	if res.err != nil || res.code != http.StatusOK {
		t.Errorf("in-flight query not drained: code=%d err=%v body=%q", res.code, res.err, res.body)
	}
	if !strings.Contains(res.body, "cells") {
		t.Errorf("drained response is not a marginal: %q", res.body)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights(" gold = 4, best-effort=0.5 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w["gold"] != 4 || w["best-effort"] != 0.5 {
		t.Errorf("parseWeights = %v", w)
	}
	if w, err := parseWeights(""); err != nil || w != nil {
		t.Errorf("empty list = %v, %v; want nil, nil", w, err)
	}
	for _, bad := range []string{"gold", "gold=", "gold=x", "gold=0", "gold=-1"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted", bad)
		}
	}
}
