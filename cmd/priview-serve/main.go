// Command priview-serve serves a published PriView synopsis over HTTP.
// Because a synopsis is already differentially private, serving
// unlimited marginal queries from it consumes no additional privacy
// budget — this is the deployment story for a data curator: build once
// with cmd/priview, serve forever.
//
//	priview-serve -synopsis synopsis.json -addr :8080
//	priview-serve -store /var/lib/priview/snapshots -addr :8080
//
// Endpoints:
//
//	GET /healthz                          liveness probe (503 while draining)
//	GET /v1/info                          release metadata
//	GET /v1/marginal?attrs=1,5,9          reconstruct a marginal
//	GET /v1/marginal?attrs=1,5&method=CLN alternative estimator
//	GET /v1/stats                         query-cache counters
//
// Query cache: because the synopsis is immutable, repeated (attrs,
// method) queries are memoized (-cache-entries / -cache-bytes bound the
// cache; set both ≤ 0 to disable). -warm k precomputes every ≤k-way
// marginal in the background at startup and after each reload, so the
// first real queries hit the cache. Cache counters are served on
// /v1/stats and logged once a minute.
//
// Durability: the synopsis is checksum-verified and audited against the
// release invariants before it serves a single query. In -store mode
// the newest verifiable snapshot is served; corrupt snapshots are
// quarantined to *.corrupt and the store falls back to an older good
// one. SIGHUP hot-reloads the synopsis without dropping queries —
// if the reload fails, the last good synopsis keeps serving.
//
// Failure model: -query-timeout bounds each reconstruction (504 on
// expiry), -max-inflight sheds excess concurrent queries (429 +
// Retry-After), and SIGINT/SIGTERM drains gracefully — /healthz flips
// to 503 so load balancers stop routing, in-flight queries run to
// completion (up to -drain-timeout), then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"priview/internal/audit"
	"priview/internal/core"
	"priview/internal/qcache"
	"priview/internal/server"
	"priview/internal/snapshot"
)

func main() {
	synPath := flag.String("synopsis", "", "synopsis file from `priview build` (v1 or v2 snapshot)")
	storeDir := flag.String("store", "", "snapshot store directory (serves the newest verifiable snapshot)")
	addr := flag.String("addr", ":8080", "listen address")
	maxK := flag.Int("max-k", 12, "largest marginal size a request may ask for")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request reconstruction deadline (0 disables; expiry returns 504)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent marginal queries before shedding with 429 (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries before closing connections")
	cacheEntries := flag.Int("cache-entries", 4096, "query-cache entry bound (≤0 together with -cache-bytes ≤0 disables the cache)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "query-cache approximate byte bound (≤0 together with -cache-entries ≤0 disables the cache)")
	warm := flag.Int("warm", 0, "precompute all marginals of up to this many attributes into the cache at startup and after reloads (0 disables)")
	flag.Parse()
	if (*synPath == "") == (*storeDir == "") {
		fmt.Fprintln(os.Stderr, "priview-serve: exactly one of -synopsis or -store is required")
		os.Exit(2)
	}
	src := &source{path: *synPath, dir: *storeDir}
	syn, from, err := src.load()
	if err != nil {
		log.Fatalf("priview-serve: %v", err)
	}
	cc := cacheConfig{entries: *cacheEntries, bytes: *cacheBytes, warmK: *warm}
	swap := server.NewSwappable(cc.wrap(syn))
	handler, srv := newServer(swap, *addr, server.Options{
		MaxK:         *maxK,
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
	})
	if dg := syn.Design(); dg != nil {
		log.Printf("serving synopsis %s (ε=%g, from %s) on %s", dg.Name(), syn.Epsilon(), from, *addr)
	} else {
		log.Printf("serving synopsis (ε=%g, from %s) on %s", syn.Epsilon(), from, *addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cc.warmAsync(ctx, swap.Current())
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	statsTick := time.NewTicker(time.Minute)
	defer statsTick.Stop()

	for {
		select {
		case err := <-done:
			// Listener failed before any signal (e.g. port in use).
			log.Fatalf("priview-serve: %v", err)
		case <-hup:
			if err := reload(ctx, src, swap, cc); err != nil {
				log.Printf("priview-serve: reload failed, keeping last good synopsis: %v", err)
			}
		case <-statsTick.C:
			logCacheStats(swap)
		case <-ctx.Done():
			stop() // a second signal kills immediately via the default handler
			log.Printf("signal received, draining for up to %v", *drainTimeout)
			if err := shutdown(srv, handler, *drainTimeout); err != nil {
				log.Printf("priview-serve: drain incomplete: %v", err)
			}
			if err := <-done; err != http.ErrServerClosed {
				log.Fatalf("priview-serve: %v", err)
			}
			log.Printf("drained, exiting")
			return
		}
	}
}

// source is where the served synopsis comes from: a single file or a
// snapshot store directory. Every load is checksum-verified (v2) and
// audited against the release invariants before it is served.
type source struct {
	path string // single-file mode
	dir  string // snapshot-store mode
}

// load returns a verified synopsis and a description of where it came
// from.
func (s *source) load() (*core.Synopsis, string, error) {
	if s.dir != "" {
		st, err := snapshot.NewStore(s.dir, 0)
		if err != nil {
			return nil, "", err
		}
		res, err := st.Load()
		if err != nil {
			return nil, "", err
		}
		for i, q := range res.Quarantined {
			log.Printf("priview-serve: quarantined corrupt snapshot %s: %v", q, res.Errs[i])
		}
		return res.Synopsis, res.Path, nil
	}
	syn, err := loadSynopsis(s.path)
	if err != nil {
		return nil, "", err
	}
	return syn, s.path, nil
}

// reload hot-swaps the served synopsis from the source. On failure the
// previous synopsis keeps serving untouched. The reloaded synopsis gets
// a fresh cache — qcache keys carry no synopsis identity, so reusing
// the old cache would serve the previous release's answers — and is
// re-warmed in the background.
func reload(ctx context.Context, src *source, swap *server.Swappable, cc cacheConfig) error {
	syn, from, err := src.load()
	if err != nil {
		return err
	}
	q := cc.wrap(syn)
	swap.Swap(q)
	log.Printf("priview-serve: reloaded synopsis from %s (ε=%g, total=%g)", from, syn.Epsilon(), syn.Total())
	cc.warmAsync(ctx, q)
	return nil
}

// cacheConfig carries the query-cache flags. With both bounds ≤ 0 the
// cache is disabled and synopses are served bare.
type cacheConfig struct {
	entries int
	bytes   int64
	warmK   int
}

// wrap layers a fresh query cache over a loaded synopsis (or returns it
// bare when the cache is disabled). Each call builds a new cache: one
// cache must never outlive the synopsis it memoizes.
func (cc cacheConfig) wrap(syn *core.Synopsis) server.Querier {
	if cc.entries <= 0 && cc.bytes <= 0 {
		return syn
	}
	return server.NewCachedQuerier(syn, qcache.New(cc.entries, cc.bytes))
}

// warmAsync precomputes all ≤warmK-way marginals into q's cache in the
// background, logging a summary when done. A no-op unless -warm is set
// and q is cache-backed.
func (cc cacheConfig) warmAsync(ctx context.Context, q server.Querier) {
	cq, ok := q.(*server.CachedQuerier)
	if !ok || cc.warmK <= 0 {
		return
	}
	go func() {
		start := time.Now()
		n, err := cq.Warm(ctx, cc.warmK, 0)
		if err != nil {
			log.Printf("priview-serve: cache warming stopped after %d marginals: %v", n, err)
			return
		}
		log.Printf("priview-serve: warmed %d marginals (≤%d-way) in %v", n, cc.warmK, time.Since(start).Round(time.Millisecond))
	}()
}

// logCacheStats emits the periodic cache counters line; silent when the
// current querier keeps no cache.
func logCacheStats(st server.CacheStatser) {
	s, enabled := st.CacheStats()
	if !enabled {
		return
	}
	log.Printf("priview-serve: cache stats: hits=%d misses=%d evictions=%d coalesced=%d entries=%d bytes=%d",
		s.Hits, s.Misses, s.Evictions, s.Coalesced, s.Entries, s.Bytes)
}

// shutdown drains srv gracefully: the handler's health probe flips to
// 503 so load balancers stop routing new work, then http.Server.Shutdown
// waits up to drain for in-flight requests before closing connections.
func shutdown(srv *http.Server, handler *server.Server, drain time.Duration) error {
	handler.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}

// loadSynopsis reads a synopsis published by `priview build` (bare v1
// or checksummed v2), then audits it against the release invariants —
// a synopsis that fails is refused, not served.
func loadSynopsis(path string) (*core.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	syn, err := snapshot.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	report := audit.Check(syn, audit.Options{})
	if err := report.Err(); err != nil {
		return nil, fmt.Errorf("%s failed its release audit: %w", path, err)
	}
	return syn, nil
}

// newServer assembles the HTTP server around a loaded synopsis,
// returning both the PriView handler (for drain control) and the
// http.Server wrapping it.
func newServer(syn server.Querier, addr string, opt server.Options) (*server.Server, *http.Server) {
	handler := server.NewWithOptions(syn, opt)
	return handler, &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
}
