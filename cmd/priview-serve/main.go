// Command priview-serve serves a published PriView synopsis over HTTP.
// Because a synopsis is already differentially private, serving
// unlimited marginal queries from it consumes no additional privacy
// budget — this is the deployment story for a data curator: build once
// with cmd/priview, serve forever.
//
//	priview-serve -synopsis synopsis.json -addr :8080
//	priview-serve -store /var/lib/priview/snapshots -addr :8080
//
// Endpoints:
//
//	GET /healthz                          liveness probe (503 while draining)
//	GET /v1/info                          release metadata
//	GET /v1/marginal?attrs=1,5,9          reconstruct a marginal
//	GET /v1/marginal?attrs=1,5&method=CLN alternative estimator
//
// Durability: the synopsis is checksum-verified and audited against the
// release invariants before it serves a single query. In -store mode
// the newest verifiable snapshot is served; corrupt snapshots are
// quarantined to *.corrupt and the store falls back to an older good
// one. SIGHUP hot-reloads the synopsis without dropping queries —
// if the reload fails, the last good synopsis keeps serving.
//
// Failure model: -query-timeout bounds each reconstruction (504 on
// expiry), -max-inflight sheds excess concurrent queries (429 +
// Retry-After), and SIGINT/SIGTERM drains gracefully — /healthz flips
// to 503 so load balancers stop routing, in-flight queries run to
// completion (up to -drain-timeout), then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"priview/internal/audit"
	"priview/internal/core"
	"priview/internal/server"
	"priview/internal/snapshot"
)

func main() {
	synPath := flag.String("synopsis", "", "synopsis file from `priview build` (v1 or v2 snapshot)")
	storeDir := flag.String("store", "", "snapshot store directory (serves the newest verifiable snapshot)")
	addr := flag.String("addr", ":8080", "listen address")
	maxK := flag.Int("max-k", 12, "largest marginal size a request may ask for")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request reconstruction deadline (0 disables; expiry returns 504)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent marginal queries before shedding with 429 (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries before closing connections")
	flag.Parse()
	if (*synPath == "") == (*storeDir == "") {
		fmt.Fprintln(os.Stderr, "priview-serve: exactly one of -synopsis or -store is required")
		os.Exit(2)
	}
	src := &source{path: *synPath, dir: *storeDir}
	syn, from, err := src.load()
	if err != nil {
		log.Fatalf("priview-serve: %v", err)
	}
	swap := server.NewSwappable(syn)
	handler, srv := newServer(swap, *addr, server.Options{
		MaxK:         *maxK,
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
	})
	if dg := syn.Design(); dg != nil {
		log.Printf("serving synopsis %s (ε=%g, from %s) on %s", dg.Name(), syn.Epsilon(), from, *addr)
	} else {
		log.Printf("serving synopsis (ε=%g, from %s) on %s", syn.Epsilon(), from, *addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	for {
		select {
		case err := <-done:
			// Listener failed before any signal (e.g. port in use).
			log.Fatalf("priview-serve: %v", err)
		case <-hup:
			if err := reload(src, swap); err != nil {
				log.Printf("priview-serve: reload failed, keeping last good synopsis: %v", err)
			}
		case <-ctx.Done():
			stop() // a second signal kills immediately via the default handler
			log.Printf("signal received, draining for up to %v", *drainTimeout)
			if err := shutdown(srv, handler, *drainTimeout); err != nil {
				log.Printf("priview-serve: drain incomplete: %v", err)
			}
			if err := <-done; err != http.ErrServerClosed {
				log.Fatalf("priview-serve: %v", err)
			}
			log.Printf("drained, exiting")
			return
		}
	}
}

// source is where the served synopsis comes from: a single file or a
// snapshot store directory. Every load is checksum-verified (v2) and
// audited against the release invariants before it is served.
type source struct {
	path string // single-file mode
	dir  string // snapshot-store mode
}

// load returns a verified synopsis and a description of where it came
// from.
func (s *source) load() (*core.Synopsis, string, error) {
	if s.dir != "" {
		st, err := snapshot.NewStore(s.dir, 0)
		if err != nil {
			return nil, "", err
		}
		res, err := st.Load()
		if err != nil {
			return nil, "", err
		}
		for i, q := range res.Quarantined {
			log.Printf("priview-serve: quarantined corrupt snapshot %s: %v", q, res.Errs[i])
		}
		return res.Synopsis, res.Path, nil
	}
	syn, err := loadSynopsis(s.path)
	if err != nil {
		return nil, "", err
	}
	return syn, s.path, nil
}

// reload hot-swaps the served synopsis from the source. On failure the
// previous synopsis keeps serving untouched.
func reload(src *source, swap *server.Swappable) error {
	syn, from, err := src.load()
	if err != nil {
		return err
	}
	swap.Swap(syn)
	log.Printf("priview-serve: reloaded synopsis from %s (ε=%g, total=%g)", from, syn.Epsilon(), syn.Total())
	return nil
}

// shutdown drains srv gracefully: the handler's health probe flips to
// 503 so load balancers stop routing new work, then http.Server.Shutdown
// waits up to drain for in-flight requests before closing connections.
func shutdown(srv *http.Server, handler *server.Server, drain time.Duration) error {
	handler.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}

// loadSynopsis reads a synopsis published by `priview build` (bare v1
// or checksummed v2), then audits it against the release invariants —
// a synopsis that fails is refused, not served.
func loadSynopsis(path string) (*core.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	syn, err := snapshot.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	report := audit.Check(syn, audit.Options{})
	if err := report.Err(); err != nil {
		return nil, fmt.Errorf("%s failed its release audit: %w", path, err)
	}
	return syn, nil
}

// newServer assembles the HTTP server around a loaded synopsis,
// returning both the PriView handler (for drain control) and the
// http.Server wrapping it.
func newServer(syn server.Querier, addr string, opt server.Options) (*server.Server, *http.Server) {
	handler := server.NewWithOptions(syn, opt)
	return handler, &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
}
