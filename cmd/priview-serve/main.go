// Command priview-serve serves a published PriView synopsis over HTTP.
// Because a synopsis is already differentially private, serving
// unlimited marginal queries from it consumes no additional privacy
// budget — this is the deployment story for a data curator: build once
// with cmd/priview, serve forever.
//
//	priview-serve -synopsis synopsis.json -addr :8080
//
// Endpoints:
//
//	GET /healthz                          liveness probe
//	GET /v1/info                          release metadata
//	GET /v1/marginal?attrs=1,5,9          reconstruct a marginal
//	GET /v1/marginal?attrs=1,5&method=CLN alternative estimator
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"priview/internal/core"
	"priview/internal/server"
)

func main() {
	synPath := flag.String("synopsis", "", "synopsis file from `priview build` (required)")
	addr := flag.String("addr", ":8080", "listen address")
	maxK := flag.Int("max-k", 12, "largest marginal size a request may ask for")
	flag.Parse()
	if *synPath == "" {
		fmt.Fprintln(os.Stderr, "priview-serve: -synopsis is required")
		os.Exit(2)
	}
	syn, err := loadSynopsis(*synPath)
	if err != nil {
		log.Fatalf("priview-serve: %v", err)
	}
	srv := newServer(syn, *addr, *maxK)
	if dg := syn.Design(); dg != nil {
		log.Printf("serving synopsis %s (ε=%g) on %s", dg.Name(), syn.Epsilon(), *addr)
	} else {
		log.Printf("serving synopsis (ε=%g) on %s", syn.Epsilon(), *addr)
	}
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("priview-serve: %v", err)
	}
}

// loadSynopsis reads a synopsis published by `priview build`.
func loadSynopsis(path string) (*core.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	syn, err := core.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return syn, nil
}

// newServer assembles the HTTP server around a loaded synopsis.
func newServer(syn *core.Synopsis, addr string, maxK int) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           server.New(syn, maxK),
		ReadHeaderTimeout: 5 * time.Second,
	}
}
