// Command priview-serve serves published PriView synopses over HTTP.
// Because a synopsis is already differentially private, serving
// unlimited marginal queries from it consumes no additional privacy
// budget — this is the deployment story for a data curator: build once
// with cmd/priview, serve forever.
//
//	priview-serve -synopsis synopsis.json -addr :8080
//	priview-serve -store /var/lib/priview/snapshots -addr :8080
//	priview-serve -registry-root /var/lib/priview/releases -addr :8080
//
// Single-tenant endpoints (-synopsis / -store):
//
//	GET /healthz                          liveness probe (503 while draining)
//	GET /v1/info                          release metadata
//	GET /v1/marginal?attrs=1,5,9          reconstruct a marginal
//	GET /v1/marginal?attrs=1,5&method=CLN alternative estimator
//	GET /v1/stats                         query-cache counters
//	GET /metrics                          Prometheus text exposition (all subsystems)
//
// Multi-tenant mode (-registry-root): every subdirectory of the root
// is a named release (its own snapshot store), served on
//
//	GET /readyz                           readiness (503 until the first scan)
//	GET /v1/releases                      registered release names
//	GET /v1/{release}/info|marginal|stats per-release routes
//	GET /v1/info|marginal|stats           alias for -default-release
//
// Releases load lazily on first query and are failure-isolated from
// each other: a release whose loads keep failing trips a per-release
// circuit breaker (-breaker-failures / -breaker-cooldown) and
// fast-fails with 503 + Retry-After without occupying shared load
// slots; each release sheds its own excess concurrency
// (-tenant-inflight, 429) and draws cache memory from one global
// -cache-bytes budget; at most -max-loaded synopses stay resident
// (LRU-evicted past that, re-warmed from their hot cache keys on
// return). SIGHUP — and every -reconcile-interval — rescans the root:
// new directories serve, removed ones 404, releases with a newer
// snapshot hot-reload through keep-last-good.
//
// Query cache: because a synopsis is immutable, repeated (attrs,
// method) queries are memoized (-cache-entries / -cache-bytes bound
// the cache, per release in registry mode; set both ≤ 0 to disable).
// -warm k precomputes every ≤k-way marginal in the background after
// each load, so the first real queries hit the cache.
//
// Durability: every synopsis is checksum-verified and audited against
// the release invariants before it serves a single query. In store and
// registry modes the newest verifiable snapshot is served; corrupt
// snapshots are quarantined to *.corrupt and loading falls back to an
// older good one. SIGHUP hot-reloads without dropping queries — if a
// reload fails, the last good synopsis keeps serving.
//
// Failure model: -query-timeout bounds each reconstruction (504 on
// expiry), -max-inflight sheds excess concurrent queries globally
// (429 + Retry-After), and SIGINT/SIGTERM drains gracefully —
// /healthz flips to 503 so load balancers stop routing, in-flight
// queries run to completion (up to -drain-timeout), then the listener
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"priview/internal/admission"
	"priview/internal/audit"
	"priview/internal/core"
	"priview/internal/qcache"
	"priview/internal/registry"
	"priview/internal/server"
	"priview/internal/snapshot"
	"priview/internal/telemetry"
)

// drainer is the handler-side drain control both server flavors
// (singleton and multi-tenant) expose.
type drainer interface {
	http.Handler
	SetDraining(bool)
}

func main() {
	synPath := flag.String("synopsis", "", "synopsis file from `priview build` (v1 or v2 snapshot)")
	storeDir := flag.String("store", "", "snapshot store directory (serves the newest verifiable snapshot)")
	registryRoot := flag.String("registry-root", "", "multi-tenant registry root: each subdirectory is a release served on /v1/{release}/…")
	defaultRelease := flag.String("default-release", "", "release the unprefixed /v1/… routes alias in registry mode (empty: named routes only)")
	addr := flag.String("addr", ":8080", "listen address")
	maxK := flag.Int("max-k", 12, "largest marginal size a request may ask for")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request reconstruction deadline (0 disables; expiry returns 504)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent marginal queries before shedding with 429 (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries before closing connections")
	cacheEntries := flag.Int("cache-entries", 4096, "query-cache entry bound, per release in registry mode (≤0 together with -cache-bytes ≤0 disables the cache)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "query-cache approximate byte bound — the global budget shared by all releases in registry mode (≤0 together with -cache-entries ≤0 disables the cache)")
	warm := flag.Int("warm", 0, "precompute all marginals of up to this many attributes into the cache after each load (0 disables)")
	maxLoaded := flag.Int("max-loaded", 8, "registry mode: synopses resident in memory at once, LRU-evicted past this (<0 disables eviction)")
	tenantInflight := flag.Int("tenant-inflight", 32, "registry mode: per-release concurrent queries before that release sheds with 429 (<0 disables)")
	breakerFailures := flag.Int("breaker-failures", 3, "registry mode: consecutive load failures that trip a release's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "registry mode: how long a tripped breaker fast-fails before admitting a probe")
	reconcileInterval := flag.Duration("reconcile-interval", time.Minute, "registry mode: background rescan period (0 disables; SIGHUP always rescans)")
	admissionTarget := flag.Duration("admission-target-delay", 25*time.Millisecond, "adaptive admission: CoDel target queue delay; queries queue up to this sojourn before shedding starts (0 reverts to the instant-429 -max-inflight semaphore)")
	tenantRPS := flag.Float64("tenant-rps", 0, "registry mode: per-release token-bucket rate limit in requests/second, scaled by -tenant-weights (0 disables)")
	tenantWeights := flag.String("tenant-weights", "", `registry mode: comma-separated name=weight fairness overrides (e.g. "gold=4,best-effort=0.5"); weight scales a release's rate limit and inflight carve`)
	brownout := flag.Duration("brownout", 0, "serve cache hits only to non-priority traffic after this long of sustained overload (0 disables; requires adaptive admission)")
	batchMax := flag.Int("batch-max", 256, "largest query count one POST /v1/marginals batch may carry")
	batchWorkers := flag.Int("batch-workers", 0, "solver goroutines one batch may fan over (0 = GOMAXPROCS)")
	slowQuery := flag.Duration("slow-query", 0, "log a structured per-stage breakdown for any marginal request slower than this (0 disables)")
	statsLogInterval := flag.Duration("stats-log-interval", time.Minute, "period of the cache/admission/registry stats log lines (0 disables; /metrics is unaffected)")
	flag.Parse()
	modes := 0
	for _, set := range []bool{*synPath != "", *storeDir != "", *registryRoot != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "priview-serve: exactly one of -synopsis, -store or -registry-root is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One telemetry registry backs /metrics for the whole process: the
	// HTTP layer, admission control, every release's cache and warm
	// pass, and the solver all register their families here.
	tel := telemetry.NewRegistry()
	opt := server.Options{
		MaxK:         *maxK,
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
		MaxBatch:     *batchMax,
		BatchWorkers: *batchWorkers,
		Telemetry:    tel,
		SlowQuery:    *slowQuery,
	}
	if *admissionTarget > 0 {
		// Adaptive admission replaces the instant-429 semaphore: queries
		// queue briefly, CoDel sheds on sustained sojourn, and an AIMD
		// limit tracks the latency gradient. -max-inflight becomes the
		// concurrency ceiling rather than a hard gate.
		cfg := &admission.Config{TargetDelay: *admissionTarget}
		if *maxInflight > 0 {
			cfg.MaxLimit = *maxInflight
			cfg.MaxQueue = *maxInflight
			cfg.InitialLimit = 16
			if *maxInflight < 16 {
				cfg.InitialLimit = *maxInflight
			}
		}
		opt.Admission = cfg
		if *brownout > 0 {
			opt.Brownout = &admission.BrownoutConfig{Enter: *brownout}
		}
	} else if *brownout > 0 {
		log.Fatalf("priview-serve: -brownout requires adaptive admission (-admission-target-delay > 0)")
	}
	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		log.Fatalf("priview-serve: %v", err)
	}
	var handler drainer
	var onHUP, onTick func()
	if *registryRoot != "" {
		reg, err := registry.New(*registryRoot, registry.Options{
			MaxLoaded:        orDisabled(*maxLoaded),
			CacheEntries:     orDisabled(*cacheEntries),
			CacheBytes:       orDisabled64(*cacheBytes),
			MaxInflight:      orDisabled(*tenantInflight),
			BreakerThreshold: *breakerFailures,
			BreakerCooldown:  *breakerCooldown,
			WarmK:            *warm,
			TenantRPS:        *tenantRPS,
			Weights:          weights,
			Metrics:          server.NewMetrics(tel),
		})
		if err != nil {
			log.Fatalf("priview-serve: %v", err)
		}
		defer reg.Close()
		if err := reg.Reconcile(ctx); err != nil {
			log.Fatalf("priview-serve: initial registry scan: %v", err)
		}
		if *reconcileInterval > 0 {
			go reg.Run(ctx, *reconcileInterval)
		}
		mt := server.NewMulti(reg, *defaultRelease, opt)
		handler = mt
		onHUP = func() {
			if err := reg.Reconcile(ctx); err != nil {
				log.Printf("priview-serve: registry rescan failed: %v", err)
			}
		}
		onTick = func() { logRegistryStats(reg); logAdmissionStats(mt) }
		log.Printf("serving registry %s (%d releases, default %q) on %s",
			*registryRoot, len(reg.Releases()), *defaultRelease, *addr)
	} else {
		src := &source{path: *synPath, dir: *storeDir}
		syn, from, err := src.load()
		if err != nil {
			log.Fatalf("priview-serve: %v", err)
		}
		cc := cacheConfig{entries: *cacheEntries, bytes: *cacheBytes, warmK: *warm, metrics: server.NewMetrics(tel)}
		swap := server.NewSwappable(cc.wrap(syn))
		sv := server.NewWithOptions(swap, opt)
		handler = sv
		if dg := syn.Design(); dg != nil {
			log.Printf("serving synopsis %s (ε=%g, from %s) on %s", dg.Name(), syn.Epsilon(), from, *addr)
		} else {
			log.Printf("serving synopsis (ε=%g, from %s) on %s", syn.Epsilon(), from, *addr)
		}
		cc.warmAsync(ctx, swap.Current())
		onHUP = func() {
			if err := reload(ctx, src, swap, cc); err != nil {
				log.Printf("priview-serve: reload failed, keeping last good synopsis: %v", err)
			}
		}
		onTick = func() { logCacheStats(swap); logAdmissionStats(sv) }
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	// A nil channel blocks forever, so -stats-log-interval=0 simply
	// never fires the periodic log lines (scraping stays live).
	var statsC <-chan time.Time
	if *statsLogInterval > 0 {
		statsTick := time.NewTicker(*statsLogInterval)
		defer statsTick.Stop()
		statsC = statsTick.C
	}

	for {
		select {
		case err := <-done:
			// Listener failed before any signal (e.g. port in use).
			log.Fatalf("priview-serve: %v", err)
		case <-hup:
			onHUP()
		case <-statsC:
			onTick()
		case <-ctx.Done():
			stop() // a second signal kills immediately via the default handler
			log.Printf("signal received, draining for up to %v", *drainTimeout)
			if err := shutdown(srv, handler, *drainTimeout); err != nil {
				log.Printf("priview-serve: drain incomplete: %v", err)
			}
			if err := <-done; err != http.ErrServerClosed {
				log.Fatalf("priview-serve: %v", err)
			}
			log.Printf("drained, exiting")
			return
		}
	}
}

// orDisabled maps the flag convention (≤0 disables) onto the registry
// convention (0 means default, negative disables).
func orDisabled(v int) int {
	if v <= 0 {
		return -1
	}
	return v
}

func orDisabled64(v int64) int64 {
	if v <= 0 {
		return -1
	}
	return v
}

// source is where the served synopsis comes from: a single file or a
// snapshot store directory. Every load is checksum-verified (v2) and
// audited against the release invariants before it is served.
type source struct {
	path string // single-file mode
	dir  string // snapshot-store mode
}

// load returns a verified synopsis and a description of where it came
// from.
func (s *source) load() (*core.Synopsis, string, error) {
	if s.dir != "" {
		st, err := snapshot.NewStore(s.dir, 0)
		if err != nil {
			return nil, "", err
		}
		res, err := st.Load()
		if err != nil {
			return nil, "", err
		}
		for i, q := range res.Quarantined {
			log.Printf("priview-serve: quarantined corrupt snapshot %s: %v", q, res.Errs[i])
		}
		return res.Synopsis, res.Path, nil
	}
	syn, err := loadSynopsis(s.path)
	if err != nil {
		return nil, "", err
	}
	return syn, s.path, nil
}

// reload hot-swaps the served synopsis from the source. On failure the
// previous synopsis keeps serving untouched. The reloaded synopsis gets
// a fresh cache — qcache keys carry no synopsis identity, so reusing
// the old cache would serve the previous release's answers — and is
// re-warmed in the background.
func reload(ctx context.Context, src *source, swap *server.Swappable, cc cacheConfig) error {
	syn, from, err := src.load()
	if err != nil {
		return err
	}
	q := cc.wrap(syn)
	swap.Swap(q)
	log.Printf("priview-serve: reloaded synopsis from %s (ε=%g, total=%g)", from, syn.Epsilon(), syn.Total())
	cc.warmAsync(ctx, q)
	return nil
}

// cacheConfig carries the query-cache flags. With both bounds ≤ 0 the
// cache is disabled and synopses are served bare.
type cacheConfig struct {
	entries int
	bytes   int64
	warmK   int
	metrics *server.Metrics // warm-progress + cache gauge surface (nil in tests)
}

// wrap layers a fresh query cache over a loaded synopsis (or returns it
// bare when the cache is disabled). Each call builds a new cache: one
// cache must never outlive the synopsis it memoizes.
func (cc cacheConfig) wrap(syn *core.Synopsis) server.Querier {
	if cc.entries <= 0 && cc.bytes <= 0 {
		return syn
	}
	cq := server.NewCachedQuerier(syn, qcache.New(cc.entries, cc.bytes))
	if cc.metrics != nil {
		// Reloads build fresh caches; swapping each onto the same
		// interned handles keeps the exported series cumulative.
		cc.metrics.InstrumentCache("default", cq)
	}
	return cq
}

// warmAsync precomputes all ≤warmK-way marginals into q's cache in the
// background, logging a summary when done. A no-op unless -warm is set
// and q is cache-backed.
func (cc cacheConfig) warmAsync(ctx context.Context, q server.Querier) {
	cq, ok := q.(*server.CachedQuerier)
	if !ok || cc.warmK <= 0 {
		return
	}
	var wp *server.WarmProgress // nil is inert, so the paths stay merged
	if cc.metrics != nil {
		wp = cc.metrics.WarmProgress("default")
	}
	go func() {
		start := time.Now()
		wp.Begin()
		warmed, skipped, err := cq.WarmWithProgress(ctx, cc.warmK, 0, wp.Update)
		wp.End(warmed, skipped)
		if err != nil {
			log.Printf("priview-serve: cache warming stopped after %d marginals (%d skipped): %v", warmed, skipped, err)
			return
		}
		log.Printf("priview-serve: warmed %d marginals (≤%d-way, %d degraded keys skipped) in %v",
			warmed, cc.warmK, skipped, time.Since(start).Round(time.Millisecond))
	}()
}

// parseWeights parses the -tenant-weights "name=weight,..." list.
func parseWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	weights := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-tenant-weights: %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights: bad weight for %q (want a positive number)", name)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

// logAdmissionStats emits the periodic overload-control line; silent
// until the admission machinery has engaged at least once.
func logAdmissionStats(h interface{ AdmissionStats() *admission.Stats }) {
	s := h.AdmissionStats()
	if s == nil {
		return
	}
	line := fmt.Sprintf("priview-serve: admission stats: limit=%.1f inflight=%d queue=%d admitted=%d queued=%d shed=%d codel_dropped=%d deadline_rejected=%d",
		s.Limit, s.Inflight, s.QueueDepth, s.Admitted, s.Queued, s.Shed, s.CoDelDropped, s.DeadlineRejected)
	if s.BrownoutActive || s.BrownoutServed > 0 || s.BrownoutRejected > 0 {
		line += fmt.Sprintf(" brownout_active=%v brownout_served=%d brownout_rejected=%d",
			s.BrownoutActive, s.BrownoutServed, s.BrownoutRejected)
	}
	log.Print(line)
}

// logCacheStats emits the periodic cache counters line; silent when the
// current querier keeps no cache.
func logCacheStats(st server.CacheStatser) {
	s, enabled := st.CacheStats()
	if !enabled {
		return
	}
	log.Printf("priview-serve: cache stats: hits=%d misses=%d evictions=%d coalesced=%d entries=%d bytes=%d",
		s.Hits, s.Misses, s.Evictions, s.Coalesced, s.Entries, s.Bytes)
}

// logRegistryStats emits the periodic per-registry summary: residency,
// the shared cache pool, and any release whose breaker is not closed.
func logRegistryStats(reg *registry.Registry) {
	all := reg.Stats()
	loaded := 0
	var open []string
	for _, s := range all {
		if s.Loaded {
			loaded++
		}
		if s.Breaker != "closed" {
			open = append(open, fmt.Sprintf("%s=%s", s.Name, s.Breaker))
		}
	}
	line := fmt.Sprintf("priview-serve: registry stats: releases=%d loaded=%d", len(all), loaded)
	if b := reg.Budget(); b != nil {
		line += fmt.Sprintf(" cache_bytes=%d/%d", b.Used(), b.Total())
	}
	if len(open) > 0 {
		line += " breakers=" + fmt.Sprint(open)
	}
	log.Print(line)
}

// shutdown drains srv gracefully: the handler's health probe flips to
// 503 so load balancers stop routing new work, then http.Server.Shutdown
// waits up to drain for in-flight requests before closing connections.
func shutdown(srv *http.Server, handler drainer, drain time.Duration) error {
	handler.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}

// newServer assembles the HTTP server around a loaded synopsis,
// returning both the PriView handler (for drain control) and the
// http.Server wrapping it.
func newServer(syn server.Querier, addr string, opt server.Options) (*server.Server, *http.Server) {
	handler := server.NewWithOptions(syn, opt)
	return handler, &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

// loadSynopsis reads a synopsis published by `priview build` (bare v1
// or checksummed v2), then audits it against the release invariants —
// a synopsis that fails is refused, not served.
func loadSynopsis(path string) (*core.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	syn, err := snapshot.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	report := audit.Check(syn, audit.Options{})
	if err := report.Err(); err != nil {
		return nil, fmt.Errorf("%s failed its release audit: %w", path, err)
	}
	return syn, nil
}
