// Command priview-serve serves a published PriView synopsis over HTTP.
// Because a synopsis is already differentially private, serving
// unlimited marginal queries from it consumes no additional privacy
// budget — this is the deployment story for a data curator: build once
// with cmd/priview, serve forever.
//
//	priview-serve -synopsis synopsis.json -addr :8080
//
// Endpoints:
//
//	GET /healthz                          liveness probe (503 while draining)
//	GET /v1/info                          release metadata
//	GET /v1/marginal?attrs=1,5,9          reconstruct a marginal
//	GET /v1/marginal?attrs=1,5&method=CLN alternative estimator
//
// Failure model: -query-timeout bounds each reconstruction (504 on
// expiry), -max-inflight sheds excess concurrent queries (429 +
// Retry-After), and SIGINT/SIGTERM drains gracefully — /healthz flips
// to 503 so load balancers stop routing, in-flight queries run to
// completion (up to -drain-timeout), then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"priview/internal/core"
	"priview/internal/server"
)

func main() {
	synPath := flag.String("synopsis", "", "synopsis file from `priview build` (required)")
	addr := flag.String("addr", ":8080", "listen address")
	maxK := flag.Int("max-k", 12, "largest marginal size a request may ask for")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request reconstruction deadline (0 disables; expiry returns 504)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent marginal queries before shedding with 429 (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries before closing connections")
	flag.Parse()
	if *synPath == "" {
		fmt.Fprintln(os.Stderr, "priview-serve: -synopsis is required")
		os.Exit(2)
	}
	syn, err := loadSynopsis(*synPath)
	if err != nil {
		log.Fatalf("priview-serve: %v", err)
	}
	handler, srv := newServer(syn, *addr, server.Options{
		MaxK:         *maxK,
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
	})
	if dg := syn.Design(); dg != nil {
		log.Printf("serving synopsis %s (ε=%g) on %s", dg.Name(), syn.Epsilon(), *addr)
	} else {
		log.Printf("serving synopsis (ε=%g) on %s", syn.Epsilon(), *addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		// Listener failed before any signal (e.g. port in use).
		log.Fatalf("priview-serve: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately via the default handler
		log.Printf("signal received, draining for up to %v", *drainTimeout)
		if err := shutdown(srv, handler, *drainTimeout); err != nil {
			log.Printf("priview-serve: drain incomplete: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			log.Fatalf("priview-serve: %v", err)
		}
		log.Printf("drained, exiting")
	}
}

// shutdown drains srv gracefully: the handler's health probe flips to
// 503 so load balancers stop routing new work, then http.Server.Shutdown
// waits up to drain for in-flight requests before closing connections.
func shutdown(srv *http.Server, handler *server.Server, drain time.Duration) error {
	handler.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}

// loadSynopsis reads a synopsis published by `priview build`.
func loadSynopsis(path string) (*core.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	syn, err := core.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return syn, nil
}

// newServer assembles the HTTP server around a loaded synopsis,
// returning both the PriView handler (for drain control) and the
// http.Server wrapping it.
func newServer(syn server.Querier, addr string, opt server.Options) (*server.Server, *http.Server) {
	handler := server.NewWithOptions(syn, opt)
	return handler, &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
}
