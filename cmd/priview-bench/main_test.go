package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchRejectsUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := benchMain([]string{"-exp", "fig9"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown experiment "fig9"`) {
		t.Errorf("stderr = %q, want unknown-experiment message", stderr.String())
	}
}

func TestBenchRejectsBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := benchMain([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestBenchSmokeFig1 runs the smallest real experiment end to end and
// checks the report shape.
func TestBenchSmokeFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: runs a reduced fig1 experiment")
	}
	var stdout, stderr bytes.Buffer
	code := benchMain([]string{"-exp", "fig1", "-queries", "2", "-runs", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "== fig1:") {
		t.Errorf("output missing fig1 header:\n%s", out)
	}
	if !strings.Contains(out, "PriView") {
		t.Errorf("output missing PriView rows:\n%s", out)
	}
}
