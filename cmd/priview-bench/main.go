// Command priview-bench regenerates the paper's evaluation artifacts:
// every figure's candlestick rows and every in-text table. By default it
// runs a reduced configuration that finishes in minutes; -full runs the
// paper-scale setup (200 query sets, 5 runs, full dataset sizes), which
// takes considerably longer.
//
// Usage:
//
//	priview-bench -exp all                 # everything, reduced size
//	priview-bench -exp fig2 -full          # one figure, paper scale
//	priview-bench -exp fig1 -csv fig1.csv  # machine-readable output
//	priview-bench -exp tables              # the in-text analytic tables
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"priview/internal/experiments"
)

func main() {
	os.Exit(benchMain(os.Args[1:], os.Stdout, os.Stderr))
}

// emitf writes report output. A failed write to the report stream has
// no recovery mid-experiment, so the error is dropped here, once.
func emitf(w io.Writer, format string, args ...any) {
	//lint:ignore errdiscard report output stream; a write failure mid-experiment has no error sink
	_, _ = fmt.Fprintf(w, format, args...)
}

func benchMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("priview-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id: all, fig1..fig6, ablation, cat-sweep, tables, runtime, qcache")
	full := fs.Bool("full", false, "paper-scale configuration (200 queries, 5 runs, full N)")
	queries := fs.Int("queries", 0, "override query-set count")
	runs := fs.Int("runs", 0, "override runs per query")
	n := fs.Int("n", 0, "override dataset size (0 = config default)")
	seed := fs.Int64("seed", 1, "root seed")
	csvPath := fs.String("csv", "", "also write figure rows as CSV to this file")
	ckptPath := fs.String("checkpoint", "", "JSONL checkpoint file: completed experiments are recorded there and resumed after a crash")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	known := map[string]bool{
		"all": true, "fig1": true, "fig2": true, "fig3": true, "fig4": true,
		"fig5": true, "fig6": true, "ablation": true, "cat-sweep": true,
		"tables": true, "runtime": true, "qcache": true,
	}
	if !known[*exp] {
		emitf(stderr, "priview-bench: unknown experiment %q\n", *exp)
		return 2
	}

	cfg := experiments.Reduced()
	if *full {
		cfg = experiments.Full()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *n > 0 {
		cfg.N = *n
	}
	cfg.Seed = *seed

	var ckpt *checkpoint
	if *ckptPath != "" {
		var err error
		ckpt, err = openCheckpoint(*ckptPath, cfg)
		if err != nil {
			emitf(stderr, "priview-bench: %v\n", err)
			return 1
		}
		defer func() {
			if err := ckpt.Close(); err != nil {
				emitf(stderr, "priview-bench: closing checkpoint: %v\n", err)
			}
		}()
		if n := len(ckpt.done); n > 0 {
			emitf(stdout, "checkpoint %s: %d experiment(s) already complete\n", *ckptPath, n)
		}
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }
	var allRows []experiments.Row
	run := func(id, title string, f func(experiments.Config) []experiments.Row) {
		if !want(id) {
			return
		}
		if ckpt != nil {
			if rows, ok := ckpt.lookup(id); ok {
				emitf(stdout, "\n== %s: %s (resumed from checkpoint) ==\n", id, title)
				emitf(stdout, "%s", experiments.FormatRows(rows))
				allRows = append(allRows, rows...)
				return
			}
		}
		start := time.Now()
		rows := f(cfg)
		if ckpt != nil {
			// Record before reporting: once the line is fsynced, a crash
			// cannot cost this experiment's work.
			if err := ckpt.record(id, rows, cfg); err != nil {
				emitf(stderr, "priview-bench: checkpoint write failed (continuing): %v\n", err)
			}
		}
		emitf(stdout, "\n== %s: %s (%v) ==\n", id, title, time.Since(start).Round(time.Millisecond))
		emitf(stdout, "%s", experiments.FormatRows(rows))
		allRows = append(allRows, rows...)
	}

	if want("tables") {
		emitf(stdout, "%s\n", experiments.RunTabCrossover().Format())
		emitf(stdout, "%s\n", experiments.RunTabMidsize().Format())
		emitf(stdout, "%s\n", experiments.RunTabEll().Format())
		emitf(stdout, "%s\n", experiments.RunTabKosarakT(cfg.Seed).Format())
		emitf(stdout, "%s\n", experiments.RunTabCategorical().Format())
	}
	run("fig1", "all methods on MSNBC (d=9)", experiments.RunFig1)
	run("fig2", "PriView vs Flat/Direct/Fourier on Kosarak and AOL", experiments.RunFig2)
	run("fig3", "reconstruction methods (CME/LP/CLP/CLN/CME*)", experiments.RunFig3)
	run("fig4", "non-negativity methods (None/Simple/Global/Ripple)", experiments.RunFig4)
	run("fig5", "markov-chain datasets mc1..mc7 (d=64)", experiments.RunFig5)
	run("fig6", "covering-design comparison on Kosarak", experiments.RunFig6)
	run("ablation", "beyond-paper ablations (solver, pipeline, ripple-θ)", experiments.RunAblation)
	run("cat-sweep", "categorical view cell-budget sweep (§4.7 guideline)", experiments.RunCategoricalSweep)
	if want("runtime") {
		rows := experiments.RunTabRuntime(cfg)
		emitf(stdout, "\n%s", experiments.FormatRuntime(rows))
	}
	if want("qcache") {
		rows := experiments.RunQCache(cfg)
		emitf(stdout, "\n%s", experiments.FormatQCache(rows))
	}

	if *csvPath != "" && len(allRows) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			emitf(stderr, "priview-bench: %v\n", err)
			return 1
		}
		err = experiments.WriteCSV(f, allRows)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			emitf(stderr, "priview-bench: %v\n", err)
			return 1
		}
		emitf(stdout, "\nwrote %d rows to %s\n", len(allRows), *csvPath)
	}
	return 0
}
