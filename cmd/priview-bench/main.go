// Command priview-bench regenerates the paper's evaluation artifacts:
// every figure's candlestick rows and every in-text table. By default it
// runs a reduced configuration that finishes in minutes; -full runs the
// paper-scale setup (200 query sets, 5 runs, full dataset sizes), which
// takes considerably longer.
//
// Usage:
//
//	priview-bench -exp all                 # everything, reduced size
//	priview-bench -exp fig2 -full          # one figure, paper scale
//	priview-bench -exp fig1 -csv fig1.csv  # machine-readable output
//	priview-bench -exp tables              # the in-text analytic tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"priview/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, fig1..fig6, ablation, cat-sweep, tables, runtime")
	full := flag.Bool("full", false, "paper-scale configuration (200 queries, 5 runs, full N)")
	queries := flag.Int("queries", 0, "override query-set count")
	runs := flag.Int("runs", 0, "override runs per query")
	n := flag.Int("n", 0, "override dataset size (0 = config default)")
	seed := flag.Int64("seed", 1, "root seed")
	csvPath := flag.String("csv", "", "also write figure rows as CSV to this file")
	flag.Parse()

	cfg := experiments.Reduced()
	if *full {
		cfg = experiments.Full()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *n > 0 {
		cfg.N = *n
	}
	cfg.Seed = *seed

	want := func(id string) bool { return *exp == "all" || *exp == id }
	var allRows []experiments.Row
	run := func(id, title string, f func(experiments.Config) []experiments.Row) {
		if !want(id) {
			return
		}
		start := time.Now()
		rows := f(cfg)
		fmt.Printf("\n== %s: %s (%v) ==\n", id, title, time.Since(start).Round(time.Millisecond))
		fmt.Print(experiments.FormatRows(rows))
		allRows = append(allRows, rows...)
	}

	if want("tables") {
		fmt.Println(experiments.RunTabCrossover().Format())
		fmt.Println(experiments.RunTabMidsize().Format())
		fmt.Println(experiments.RunTabEll().Format())
		fmt.Println(experiments.RunTabKosarakT(cfg.Seed).Format())
		fmt.Println(experiments.RunTabCategorical().Format())
	}
	run("fig1", "all methods on MSNBC (d=9)", experiments.RunFig1)
	run("fig2", "PriView vs Flat/Direct/Fourier on Kosarak and AOL", experiments.RunFig2)
	run("fig3", "reconstruction methods (CME/LP/CLP/CLN/CME*)", experiments.RunFig3)
	run("fig4", "non-negativity methods (None/Simple/Global/Ripple)", experiments.RunFig4)
	run("fig5", "markov-chain datasets mc1..mc7 (d=64)", experiments.RunFig5)
	run("fig6", "covering-design comparison on Kosarak", experiments.RunFig6)
	run("ablation", "beyond-paper ablations (solver, pipeline, ripple-θ)", experiments.RunAblation)
	run("cat-sweep", "categorical view cell-budget sweep (§4.7 guideline)", experiments.RunCategoricalSweep)
	if want("runtime") {
		rows := experiments.RunTabRuntime(cfg)
		fmt.Println()
		fmt.Print(experiments.FormatRuntime(rows))
	}

	if *csvPath != "" && len(allRows) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "priview-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, allRows); err != nil {
			fmt.Fprintf(os.Stderr, "priview-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d rows to %s\n", len(allRows), *csvPath)
	}

	if *exp != "all" && !strings.HasPrefix(*exp, "fig") && *exp != "ablation" && *exp != "cat-sweep" && *exp != "tables" && *exp != "runtime" {
		fmt.Fprintf(os.Stderr, "priview-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
