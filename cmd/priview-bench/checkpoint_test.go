package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchFig1 runs the smallest fig1 configuration with a checkpoint and
// CSV output, returning stdout and the CSV bytes.
func benchFig1(t *testing.T, ckpt, csv string, seed string) (string, []byte) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := []string{"-exp", "fig1", "-queries", "2", "-runs", "1",
		"-checkpoint", ckpt, "-csv", csv, "-seed", seed}
	if code := benchMain(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	raw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	return stdout.String(), raw
}

// TestCheckpointResume proves crash-resume: a second run with the same
// checkpoint and configuration recomputes nothing and reproduces the
// identical rows.
func TestCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: runs a reduced fig1 experiment")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "bench.ckpt")

	out1, csv1 := benchFig1(t, ckpt, filepath.Join(dir, "a.csv"), "1")
	if strings.Contains(out1, "resumed from checkpoint") {
		t.Fatalf("first run claims to resume:\n%s", out1)
	}
	out2, csv2 := benchFig1(t, ckpt, filepath.Join(dir, "b.csv"), "1")
	if !strings.Contains(out2, "resumed from checkpoint") {
		t.Fatalf("second run did not resume:\n%s", out2)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("resumed rows differ from the originally computed rows")
	}
}

// TestCheckpointConfigMismatch proves a checkpoint recorded under one
// configuration never satisfies a different one.
func TestCheckpointConfigMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: runs two reduced fig1 experiments")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "bench.ckpt")
	benchFig1(t, ckpt, filepath.Join(dir, "a.csv"), "1")
	out, _ := benchFig1(t, ckpt, filepath.Join(dir, "b.csv"), "2")
	if strings.Contains(out, "resumed from checkpoint") {
		t.Fatalf("run with a different seed resumed stale rows:\n%s", out)
	}
}

// TestCheckpointToleratesTornTrailingLine simulates a crash mid-append:
// the intact records before the torn line still resume.
func TestCheckpointToleratesTornTrailingLine(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: runs a reduced fig1 experiment")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "bench.ckpt")
	benchFig1(t, ckpt, filepath.Join(dir, "a.csv"), "1")

	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"fig2","config":{"torn...`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	out, _ := benchFig1(t, ckpt, filepath.Join(dir, "b.csv"), "1")
	if !strings.Contains(out, "resumed from checkpoint") {
		t.Fatalf("torn trailing line broke resume:\n%s", out)
	}
}

// TestCheckpointUnreadableFileFails proves a checkpoint path that is a
// directory is a hard error rather than silent recomputation.
func TestCheckpointUnreadableFileFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := benchMain([]string{"-exp", "fig1", "-checkpoint", t.TempDir()}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("benchMain accepted a directory as checkpoint (stderr: %s)", stderr.String())
	}
}
