package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"priview/internal/experiments"
)

// checkpoint persists completed experiment cells so a crashed or killed
// bench run resumes where it stopped instead of recomputing hours of
// work. The format is JSONL — one self-contained record per completed
// experiment id, appended and fsynced as each experiment finishes — so
// a crash mid-write loses at most the trailing partial line, which the
// loader tolerates by skipping it.
type checkpoint struct {
	path string
	f    *os.File
	done map[string][]experiments.Row
}

// checkpointConfig fingerprints the settings a record was computed
// under; a record only satisfies a run with the identical
// configuration, so resuming with different -queries/-runs/-n/-seed
// recomputes rather than serving mismatched rows.
type checkpointConfig struct {
	Queries int   `json:"queries"`
	Runs    int   `json:"runs"`
	N       int   `json:"n"`
	Seed    int64 `json:"seed"`
}

type checkpointRecord struct {
	ID     string            `json:"id"`
	Config checkpointConfig  `json:"config"`
	Rows   []experiments.Row `json:"rows"`
}

func fingerprint(cfg experiments.Config) checkpointConfig {
	return checkpointConfig{Queries: cfg.Queries, Runs: cfg.Runs, N: cfg.N, Seed: cfg.Seed}
}

// openCheckpoint loads existing completed records matching cfg and
// opens the file for appending new ones. A missing file is an empty
// checkpoint; a torn trailing line is skipped.
func openCheckpoint(path string, cfg experiments.Config) (*checkpoint, error) {
	c := &checkpoint{path: path, done: map[string][]experiments.Row{}}
	want := fingerprint(cfg)
	if raw, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(raw)
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec checkpointRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				// Torn or corrupt line (crash mid-append); everything
				// before it is intact, so skip and keep going.
				continue
			}
			if rec.Config == want && rec.ID != "" {
				c.done[rec.ID] = rec.Rows
			}
		}
		serr := sc.Err()
		if cerr := raw.Close(); serr == nil {
			serr = cerr
		}
		if serr != nil {
			return nil, fmt.Errorf("reading checkpoint %s: %w", path, serr)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	return c, nil
}

// lookup returns the stored rows for a completed experiment id.
func (c *checkpoint) lookup(id string) ([]experiments.Row, bool) {
	rows, ok := c.done[id]
	return rows, ok
}

// record appends and fsyncs a completed experiment. After it returns,
// a crash cannot lose this cell.
func (c *checkpoint) record(id string, rows []experiments.Row, cfg experiments.Config) error {
	line, err := json.Marshal(checkpointRecord{ID: id, Config: fingerprint(cfg), Rows: rows})
	if err != nil {
		return err
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.done[id] = rows
	return nil
}

func (c *checkpoint) Close() error { return c.f.Close() }
