package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGeneratePlanBuildQuery(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.txt")
	synPath := filepath.Join(dir, "syn.json")

	if err := cmdGenerate([]string{"-dataset", "msnbc", "-n", "2000", "-seed", "3", "-out", dataPath}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(dataPath); err != nil {
		t.Fatalf("dataset not written: %v", err)
	}
	if err := cmdPlan([]string{"-in", dataPath, "-eps", "1.0"}); err != nil {
		t.Fatalf("plan: %v", err)
	}
	if err := cmdBuild([]string{"-in", dataPath, "-eps", "1.0", "-out", synPath}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := cmdQuery([]string{"-synopsis", synPath, "-attrs", "0,3,7"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	// Alternative estimators via the CLI.
	for _, m := range []string{"CLN", "CLP", "cme"} {
		if err := cmdQuery([]string{"-synopsis", synPath, "-attrs", "1,5", "-method", m}); err != nil {
			t.Errorf("query method %s: %v", m, err)
		}
	}
}

func TestBuildExplicitDesign(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.txt")
	synPath := filepath.Join(dir, "syn.json")
	if err := cmdGenerate([]string{"-dataset", "uniform", "-d", "12", "-n", "500", "-out", dataPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-in", dataPath, "-eps", "1.0", "-t", "2", "-ell", "6", "-out", synPath}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAllFamilies(t *testing.T) {
	dir := t.TempDir()
	for _, family := range []string{"kosarak", "aol", "msnbc", "mchain", "uniform"} {
		out := filepath.Join(dir, family+".txt")
		if err := cmdGenerate([]string{"-dataset", family, "-n", "50", "-out", out}); err != nil {
			t.Errorf("%s: %v", family, err)
		}
	}
}

func TestCommandValidation(t *testing.T) {
	if err := cmdGenerate([]string{"-dataset", "nope", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := cmdGenerate([]string{"-dataset", "msnbc"}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := cmdPlan([]string{}); err == nil {
		t.Error("plan without -in accepted")
	}
	if err := cmdBuild([]string{"-in", "x"}); err == nil {
		t.Error("build without -out accepted")
	}
	if err := cmdQuery([]string{"-synopsis", "missing.json", "-attrs", "0"}); err == nil {
		t.Error("query on missing synopsis accepted")
	}
	if err := cmdQuery([]string{}); err == nil {
		t.Error("query without flags accepted")
	}
}

func TestQueryBadAttrsAndMethod(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.txt")
	synPath := filepath.Join(dir, "syn.json")
	if err := cmdGenerate([]string{"-dataset", "msnbc", "-n", "200", "-out", dataPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-in", dataPath, "-eps", "1", "-out", synPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-synopsis", synPath, "-attrs", "0,x"}); err == nil {
		t.Error("bad attribute accepted")
	}
	if err := cmdQuery([]string{"-synopsis", synPath, "-attrs", "0", "-method", "LPX"}); err == nil {
		t.Error("bad method accepted")
	}
}

func TestImportCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	outPath := filepath.Join(dir, "out.txt")
	csvContent := "city,plan\nparis,free\nlyon,pro\nparis,pro\n"
	if err := os.WriteFile(csvPath, []byte(csvContent), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdImport([]string{"-csv", csvPath, "-header", "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	// Imported dataset must be loadable and buildable.
	synPath := filepath.Join(dir, "syn.json")
	if err := cmdBuild([]string{"-in", outPath, "-eps", "1", "-out", synPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdImport([]string{"-csv", csvPath}); err == nil {
		t.Error("import without -out accepted")
	}
	if err := cmdImport([]string{"-csv", filepath.Join(dir, "missing.csv"), "-out", outPath}); err == nil {
		t.Error("import of missing file accepted")
	}
}

func TestDesignExportAndBuildFromFile(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.txt")
	designPath := filepath.Join(dir, "design.txt")
	synPath := filepath.Join(dir, "syn.json")
	if err := cmdGenerate([]string{"-dataset", "msnbc", "-n", "500", "-out", dataPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDesign([]string{"-d", "9", "-ell", "6", "-t", "2", "-out", designPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-in", dataPath, "-eps", "1", "-design", designPath, "-t", "2", "-out", synPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-synopsis", synPath, "-attrs", "0,4"}); err != nil {
		t.Fatal(err)
	}
	// -design without -t must be refused.
	if err := cmdBuild([]string{"-in", dataPath, "-eps", "1", "-design", designPath, "-out", synPath}); err == nil {
		t.Error("build -design without -t accepted")
	}
}
