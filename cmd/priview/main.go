// Command priview is the end-to-end CLI for the PriView mechanism:
// generate (synthetic) datasets, plan a view set, build a differentially
// private synopsis, and query arbitrary k-way marginals from it.
//
// Usage:
//
//	priview generate -dataset kosarak -n 100000 -seed 1 -out data.txt
//	priview plan     -in data.txt -eps 1.0
//	priview build    -in data.txt -eps 1.0 -out synopsis.json
//	priview query    -synopsis synopsis.json -attrs 3,7,19,30
//
// Subcommands:
//
//	generate  write a synthetic dataset (kosarak, aol, msnbc, mchain,
//	          uniform) in the line-oriented bit-string format
//	plan      print the covering design §4.5 planning would choose
//	build     construct and save a private synopsis
//	query     reconstruct one marginal from a saved synopsis
//	audit     check a saved synopsis against the release invariants
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"priview/internal/audit"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/server"
	"priview/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "design":
		err = cmdDesign(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "priview: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "priview: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: priview <generate|import|plan|build|query|audit> [flags]
  generate -dataset kosarak|aol|msnbc|mchain|uniform -n N [-order i] [-seed s] -out FILE
  import   -csv FILE [-header] [-max-attrs M] [-min-count C] -out FILE
  plan     -in FILE -eps E [-seed s]
  design   -d D -ell L -t T [-seed s] -out FILE       (export; La Jolla text format)
  build    -in FILE -eps E [-t 0|2|3|4] [-ell L] [-design FILE] [-snapshot] [-seed s] -out FILE
  query    -synopsis FILE | -server URL  -attrs a,b,c [-method CME|CLN|CLP]
           [-timeout D] [-retry-budget R] [-priority high]   (remote mode)
  audit    [-json] FILE                               (exit 1 if invariants are violated)`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	name := fs.String("dataset", "kosarak", "dataset family: kosarak, aol, msnbc, mchain, uniform")
	n := fs.Int("n", 100000, "number of records")
	order := fs.Int("order", 3, "markov-chain order (mchain only)")
	dim := fs.Int("d", 16, "dimensions (uniform only)")
	p := fs.Float64("p", 0.3, "bit density (uniform only)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	var data *dataset.Dataset
	switch *name {
	case "kosarak":
		data = synth.Kosarak(*n, *seed)
	case "aol":
		data = synth.AOL(*n, *seed)
	case "msnbc":
		data = synth.MSNBC(*n, *seed)
	case "mchain":
		data = synth.MChain(*order, *n, *seed)
	case "uniform":
		data = synth.Uniform(*dim, *n, *p, *seed)
	default:
		return fmt.Errorf("generate: unknown dataset %q", *name)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := data.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: d=%d N=%d\n", *out, data.Dim(), data.Len())
	return nil
}

// cmdImport one-hot encodes a categorical CSV into the binary dataset
// format, printing the attribute legend so query results can be mapped
// back to (column, value) pairs.
func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	csvPath := fs.String("csv", "", "categorical CSV input (required)")
	header := fs.Bool("header", false, "treat the first row as column names")
	maxAttrs := fs.Int("max-attrs", 64, "keep at most this many (column,value) attributes")
	minCount := fs.Int("min-count", 0, "drop (column,value) pairs occurring fewer times")
	out := fs.String("out", "", "output dataset file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvPath == "" || *out == "" {
		return fmt.Errorf("import: -csv and -out are required")
	}
	in, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer in.Close()
	data, spec, err := dataset.FromCSV(in, dataset.OneHotOptions{
		HasHeader: *header, MaxAttrs: *maxAttrs, MinCount: *minCount,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := data.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: d=%d N=%d\nattribute legend:\n", *out, data.Dim(), data.Len())
	for i := 0; i < data.Dim(); i++ {
		fmt.Printf("  %2d  %s\n", i, spec.AttrName(i))
	}
	return nil
}

func loadDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadFrom(f)
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	in := fs.String("in", "", "dataset file (required)")
	eps := fs.Float64("eps", 1.0, "privacy budget")
	seed := fs.Int64("seed", 1, "design-construction seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("plan: -in is required")
	}
	data, err := loadDataset(*in)
	if err != nil {
		return err
	}
	// Use a tiny budget slice for the count, as §4.5 suggests.
	nEst := core.NoisyCount(data, 0.001, noise.NewStream(*seed))
	plan := core.PlanDesign(data.Dim(), int(nEst), *eps, *seed)
	fmt.Printf("dataset: d=%d, N≈%.0f (noisy estimate)\n", data.Dim(), nEst)
	fmt.Printf("chosen design: %s (t=%d, ℓ=%d, w=%d)\n",
		plan.Design.Name(), plan.Design.T, plan.Design.L, plan.Design.W())
	fmt.Printf("predicted noise error (Eq. 5): %.5f (target band 0.001-0.003)\n", plan.NoiseError)
	return nil
}

// cmdDesign constructs a covering design and writes it in the La Jolla
// text format, for inspection or hand-tuning.
func cmdDesign(args []string) error {
	fs := flag.NewFlagSet("design", flag.ExitOnError)
	d := fs.Int("d", 32, "number of attributes")
	ell := fs.Int("ell", core.DefaultEll, "block size ℓ")
	t := fs.Int("t", 2, "coverage t")
	seed := fs.Int64("seed", 1, "construction seed")
	out := fs.String("out", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("design: -out is required")
	}
	l := *ell
	if l > *d {
		l = *d
	}
	dg := covering.Best(*d, l, *t, *seed, 4)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := covering.WriteDesign(f, dg); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s on %d points\n", *out, dg.Name(), dg.D)
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "dataset file (required)")
	out := fs.String("out", "", "synopsis output file (required)")
	eps := fs.Float64("eps", 1.0, "privacy budget")
	t := fs.Int("t", 0, "coverage t (0 = plan automatically)")
	ell := fs.Int("ell", core.DefaultEll, "view size ℓ")
	designPath := fs.String("design", "", "load the view set from a block-per-line design file (e.g. from the La Jolla repository); -t must state its coverage")
	asSnapshot := fs.Bool("snapshot", false, "write a checksummed v2 snapshot (atomic write) instead of the bare v1 format")
	seed := fs.Int64("seed", 1, "noise/design seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("build: -in and -out are required")
	}
	data, err := loadDataset(*in)
	if err != nil {
		return err
	}
	var design *covering.Design
	switch {
	case *designPath != "":
		if *t == 0 {
			return fmt.Errorf("build: -design requires -t (the file's coverage guarantee)")
		}
		f, err := os.Open(*designPath)
		if err != nil {
			return err
		}
		design, err = covering.ReadDesign(f, data.Dim(), *t)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	case *t == 0:
		plan := core.PlanDesign(data.Dim(), data.Len(), *eps, *seed)
		design = plan.Design
	default:
		l := *ell
		if l > data.Dim() {
			l = data.Dim()
		}
		design = covering.Best(data.Dim(), l, *t, *seed, 4)
	}
	syn := core.BuildSynopsis(data, core.Config{Epsilon: *eps, Design: design}, noise.NewStream(*seed))
	// Audit the fresh release before publishing: a post-processing bug
	// must fail the build, not surface later from a serving replica.
	report := audit.Check(syn, audit.Options{})
	if err := report.Err(); err != nil {
		return fmt.Errorf("build: freshly built synopsis failed its release audit: %w", err)
	}
	if *asSnapshot {
		if err := snapshot.WriteFile(snapshot.OS{}, *out, syn); err != nil {
			return err
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := syn.Save(f); err != nil {
			return err
		}
	}
	fmt.Printf("built synopsis with %s under ε=%g; wrote %s\n", design.Name(), *eps, *out)
	return nil
}

// cmdAudit checks a saved synopsis (bare v1 or checksummed v2) against
// the release invariants, printing the report and failing (exit 1) on
// any Error-severity finding.
func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("audit: usage: priview audit [-json] FILE")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	syn, err := snapshot.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("audit: %s: %w", path, err)
	}
	report := audit.Check(syn, audit.Options{})
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Print(report.String())
	}
	if err := report.Err(); err != nil {
		return fmt.Errorf("audit: %s: %w", path, err)
	}
	return nil
}

// parseCoreMethod maps a method name (the server's spelling) to the
// core estimator.
func parseCoreMethod(s string) (core.ReconstructMethod, error) {
	switch strings.ToUpper(s) {
	case "", "CME":
		return core.CME, nil
	case "CLN":
		return core.CLN, nil
	case "LP":
		return core.LP, nil
	case "CLP":
		return core.CLP, nil
	case "CMEDUAL", "CME-DUAL":
		return core.CMEDual, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

// parseAttrSets parses the -attrs syntax: comma-separated attribute
// indices, with ';' separating the sets of a batch.
func parseAttrSets(raw string) ([][]int, error) {
	var sets [][]int
	for _, group := range strings.Split(raw, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		var attrs []int
		for _, part := range strings.Split(group, ",") {
			a, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad attribute %q", part)
			}
			attrs = append(attrs, a)
		}
		sort.Ints(attrs)
		sets = append(sets, attrs)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("no attribute sets")
	}
	return sets, nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	synPath := fs.String("synopsis", "", "synopsis file (local mode)")
	serverURL := fs.String("server", "", "priview-serve base URL (remote mode, e.g. http://host:8080 or http://host:8080/v1/name for a release)")
	attrsFlag := fs.String("attrs", "", `comma-separated attribute indices; separate sets with ';' to batch (e.g. "0,1;1,3;2")`)
	allK := fs.Int("all-k", 0, "batch every non-empty marginal of up to this many attributes (alternative to -attrs)")
	method := fs.String("method", "CME", "reconstruction method: CME, CLN, LP, CLP, CME-dual")
	timeout := fs.Duration("timeout", 30*time.Second, "remote mode: end-to-end deadline, propagated to the server")
	retryBudget := fs.Float64("retry-budget", 0, "remote mode: retries allowed per successful request (e.g. 0.1 ≈ 10% retry amplification; 0 disables budgeting)")
	priority := fs.String("priority", "", `remote mode: request priority ("high" bypasses server brownout)`)
	batchWorkers := fs.Int("batch-workers", 0, "local mode: solver goroutines a batch fans over (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*synPath == "") == (*serverURL == "") {
		return fmt.Errorf("query: exactly one of -synopsis or -server is required")
	}
	if (*attrsFlag == "") == (*allK == 0) {
		return fmt.Errorf("query: exactly one of -attrs or -all-k is required")
	}
	m, err := parseCoreMethod(*method)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var sets [][]int
	if *attrsFlag != "" {
		sets, err = parseAttrSets(*attrsFlag)
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
	}

	if *serverURL != "" {
		c := server.NewClientWithPolicy(*serverURL, nil, server.RetryPolicy{RetryBudget: *retryBudget})
		c.SetPriority(*priority)
		if *allK > 0 {
			info, err := c.InfoContext(ctx)
			if err != nil {
				return fmt.Errorf("query: %w", err)
			}
			for _, r := range core.AllKWay(info.D, *allK, m) {
				sets = append(sets, r.Attrs)
			}
		}
		if len(sets) == 1 {
			t, err := c.MarginalContext(ctx, sets[0], strings.ToUpper(*method))
			if err != nil {
				return fmt.Errorf("query: %w", err)
			}
			printMarginal(t)
			return nil
		}
		queries := make([]server.BatchQuery, len(sets))
		for i, attrs := range sets {
			queries[i] = server.BatchQuery{Attrs: attrs}
		}
		start := time.Now()
		answers, err := c.MarginalsContext(ctx, queries, strings.ToUpper(*method))
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
		printBatch(sets, func(i int) (*marginal.Table, bool) {
			return answers[i].Table, answers[i].Degraded
		}, time.Since(start))
		return nil
	}

	f, err := os.Open(*synPath)
	if err != nil {
		return err
	}
	syn, err := snapshot.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	syn.SetMethod(m)
	if *allK > 0 {
		dg := syn.Design()
		if dg == nil {
			return fmt.Errorf("query: -all-k needs a synopsis with a recorded design")
		}
		for _, r := range core.AllKWay(dg.D, *allK, m) {
			sets = append(sets, r.Attrs)
		}
	}
	if len(sets) == 1 {
		printMarginal(syn.Query(sets[0]))
		return nil
	}
	reqs := make([]core.BatchRequest, len(sets))
	for i, attrs := range sets {
		reqs[i] = core.BatchRequest{Attrs: attrs, Method: m}
	}
	start := time.Now()
	results, err := syn.QueryBatch(ctx, reqs, core.BatchOptions{Workers: *batchWorkers})
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	printBatch(sets, func(i int) (*marginal.Table, bool) {
		return results[i].Table, results[i].Degraded()
	}, time.Since(start))
	return nil
}

// printMarginal writes the full cell listing of one marginal.
func printMarginal(table *marginal.Table) {
	fmt.Printf("marginal over attributes %v (total %.1f):\n", table.Attrs, table.Total())
	for i, v := range table.Cells {
		assignment := make([]byte, len(table.Attrs))
		for j := range table.Attrs {
			assignment[j] = '0' + byte(i>>uint(j)&1)
		}
		fmt.Printf("  %s  %.2f\n", assignment, v)
	}
}

// printBatch summarizes a batched answer: one line per marginal plus
// the wall-clock footer (full cell dumps of hundreds of tables help
// nobody; re-query a single set to inspect cells).
func printBatch(sets [][]int, answer func(i int) (*marginal.Table, bool), elapsed time.Duration) {
	degraded := 0
	for i := range sets {
		t, deg := answer(i)
		mark := ""
		if deg {
			mark = "  [degraded]"
			degraded++
		}
		fmt.Printf("  %v  total %.1f%s\n", t.Attrs, t.Total(), mark)
	}
	fmt.Printf("%d marginals (%d degraded) in %v\n", len(sets), degraded, elapsed.Round(time.Millisecond))
}
