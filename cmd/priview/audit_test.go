package main

import (
	"os"
	"path/filepath"
	"testing"
)

// buildCLISynopsis drives generate+build and returns the synopsis path.
func buildCLISynopsis(t *testing.T, extra ...string) string {
	t.Helper()
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.txt")
	synPath := filepath.Join(dir, "syn.json")
	if err := cmdGenerate([]string{"-dataset", "msnbc", "-n", "1000", "-seed", "7", "-out", dataPath}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	args := append([]string{"-in", dataPath, "-eps", "1.0", "-out", synPath}, extra...)
	if err := cmdBuild(args); err != nil {
		t.Fatalf("build: %v", err)
	}
	return synPath
}

func TestAuditCleanSynopsis(t *testing.T) {
	synPath := buildCLISynopsis(t)
	if err := cmdAudit([]string{synPath}); err != nil {
		t.Fatalf("audit of a fresh build failed: %v", err)
	}
	if err := cmdAudit([]string{"-json", synPath}); err != nil {
		t.Fatalf("audit -json: %v", err)
	}
}

func TestAuditCorruptSynopsisFails(t *testing.T) {
	synPath := buildCLISynopsis(t)
	raw, err := os.ReadFile(synPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(synPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdAudit([]string{synPath}); err == nil {
		t.Fatal("audit accepted a truncated synopsis")
	}
}

func TestAuditInconsistentSynopsisFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	doc := `{"format":"priview-synopsis-v1","epsilon":1,"total":40,"views":[` +
		`{"attrs":[0,1],"cells":[15,15,5,5]},{"attrs":[1,2],"cells":[10,10,10,10]}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdAudit([]string{path}); err == nil {
		t.Fatal("audit passed mutually inconsistent views")
	}
}

func TestAuditUsage(t *testing.T) {
	if err := cmdAudit([]string{}); err == nil {
		t.Fatal("audit with no file should fail")
	}
}

// TestBuildSnapshotRoundTrip proves -snapshot writes a v2 container
// that both audit and query read back.
func TestBuildSnapshotRoundTrip(t *testing.T) {
	synPath := buildCLISynopsis(t, "-snapshot")
	if err := cmdAudit([]string{synPath}); err != nil {
		t.Fatalf("audit of v2 snapshot: %v", err)
	}
	if err := cmdQuery([]string{"-synopsis", synPath, "-attrs", "0,3"}); err != nil {
		t.Fatalf("query of v2 snapshot: %v", err)
	}
}
