module priview

go 1.22
