// Package priview is a from-scratch Go implementation of PriView
// (Qardaji, Yang, Li — SIGMOD 2014): practical differentially private
// release of marginal contingency tables for high-dimensional binary
// data.
//
// PriView publishes a private synopsis — Laplace-noised marginal tables
// over a strategically chosen collection of attribute subsets ("views",
// drawn from a covering design), post-processed for mutual consistency
// and non-negativity — from which any k-way marginal can then be
// reconstructed offline by maximum-entropy estimation, with error orders
// of magnitude below adding noise to each marginal directly.
//
// # Quick start
//
//	data := priview.NewDataset(32, records)     // d ≤ 64 binary attrs
//	plan := priview.PlanDesign(32, data.Len(), 1.0, seed)
//	syn := priview.Build(data, priview.Config{
//		Epsilon: 1.0,
//		Design:  plan.Design,
//	}, seed)
//	table := syn.Query([]int{3, 7, 19, 30})     // any k-way marginal
//
// Building the synopsis is the only operation that touches the raw
// data; Query is pure post-processing and satisfies ε-differential
// privacy end to end by the post-processing property.
//
// The internal packages additionally implement every baseline the paper
// compares against (Flat, Direct, Fourier ± LP repair, Data Cubes,
// Matrix Mechanism, MWEM, learning-based) and a harness regenerating
// each of the paper's tables and figures; see DESIGN.md and
// cmd/priview-bench.
package priview

import (
	"priview/internal/accuracy"
	"priview/internal/consistency"
	"priview/internal/core"
	"priview/internal/covering"
	"priview/internal/dataset"
	"priview/internal/marginal"
	"priview/internal/noise"
	"priview/internal/reconstruct"
)

// Dataset is a d-dimensional binary dataset (d ≤ 64); records are bit
// strings packed into uint64, bit i holding attribute i.
type Dataset = dataset.Dataset

// NewDataset wraps records (one uint64 per row) as a dataset over dim
// binary attributes. Bits at positions ≥ dim are ignored.
func NewDataset(dim int, records []uint64) *Dataset {
	return dataset.New(dim, records)
}

// Table is a marginal contingency table over a sorted attribute set;
// cell index bit j holds the value of the j-th attribute.
type Table = marginal.Table

// Design is a (w, ℓ, t)-covering design: w attribute blocks of size ≤ ℓ
// jointly containing every t-subset of the d attributes.
type Design = covering.Design

// BestDesign constructs a small covering design for d attributes with
// blocks of ℓ and coverage t, choosing the best among an affine-plane
// construction, a binary subspace cover, a group construction and
// randomized greedy restarts. The result is verified before being
// returned.
func BestDesign(d, ell, t int, seed int64) *Design {
	return covering.Best(d, ell, t, seed, 4)
}

// WorkloadDesign builds a view set tailored to a known marginal
// workload: every listed attribute set (each of size ≤ ell) ends up
// fully inside one view, so those marginals are answered with zero
// coverage error; unlisted marginals still reconstruct via maximum
// entropy. Use this instead of PlanDesign when the queries of interest
// are known up front.
func WorkloadDesign(d, ell int, workload [][]int, seed int64) (*Design, error) {
	return covering.BestWorkloadCover(d, ell, workload, seed, 4)
}

// Plan is a chosen design plus its predicted Eq. 5 noise error.
type Plan = core.Plan

// PlanDesign chooses a covering design per the paper's §4.5 guidance:
// ℓ=8 and the largest t ∈ {2,3,4} whose predicted noise error stays
// within the target band. n may be a noisy estimate of the record count
// (see NoisyCount).
func PlanDesign(d, n int, eps float64, seed int64) Plan {
	return core.PlanDesign(d, n, eps, seed)
}

// NoisyCount estimates the dataset size with a small slice of privacy
// budget (the paper suggests ε=0.001) for use by PlanDesign.
func NoisyCount(data *Dataset, eps float64, seed int64) float64 {
	return core.NoisyCount(data, eps, noise.NewStream(seed))
}

// NonnegMethod selects the negative-entry correction strategy.
type NonnegMethod = consistency.NonnegMethod

// Non-negativity strategies (§4.4 and Fig. 4). Ripple is the paper's
// method and the default.
const (
	NonnegNone   = consistency.NonnegNone
	NonnegSimple = consistency.NonnegSimple
	NonnegGlobal = consistency.NonnegGlobal
	NonnegRipple = consistency.NonnegRipple
)

// ReconstructMethod selects the estimator for marginals not covered by
// a single view (§4.3).
type ReconstructMethod = core.ReconstructMethod

// Reconstruction estimators. CME (maximum entropy) is the paper's
// proposed method and the default.
const (
	CME = core.CME
	CLN = core.CLN
	LP  = core.LP
	CLP = core.CLP
)

// SolverOptions tunes the iterative reconstruction solvers.
type SolverOptions = reconstruct.Options

// Config controls synopsis construction; see the field docs on
// core.Config. Epsilon and Design are required.
type Config = core.Config

// Synopsis is a published PriView synopsis: consistent, non-negative
// view marginals answering arbitrary k-way marginal queries.
type Synopsis = core.Synopsis

// Build constructs the differentially private synopsis. This is the
// only operation that reads the raw data. The seed determines the
// Laplace noise; use different seeds for independent releases (each
// release consumes its own ε budget).
func Build(data *Dataset, cfg Config, seed int64) *Synopsis {
	return core.BuildSynopsis(data, cfg, noise.NewStream(seed))
}

// FromViews assembles a synopsis from externally supplied noisy view
// tables (e.g. loaded from disk) and applies the configured
// post-processing.
func FromViews(views []*Table, cfg Config) *Synopsis {
	return core.FromViews(views, cfg)
}

// Merge combines independent releases over the same view set into one
// more-accurate synopsis by inverse-variance weighting. The result is
// (Σ εᵢ)-differentially private by sequential composition.
func Merge(synopses ...*Synopsis) (*Synopsis, error) {
	return core.Merge(synopses...)
}

// L2Error returns the L2 distance between two tables over the same
// attribute set — the paper's error distance.
func L2Error(a, b *Table) float64 { return accuracy.L2Error(a, b) }

// JSDivergence returns the Jensen–Shannon divergence between the
// normalized tables — the paper's second error measure.
func JSDivergence(a, b *Table) float64 { return accuracy.JSDivergence(a, b) }
