// Integration tests exercising whole pipelines across packages: the
// curator workflow (plan → budget → build → save → serve → query), the
// d=64 extreme, and cross-method sanity at the public-API level.
package priview_test

import (
	"bytes"
	"math"
	"net/http/httptest"
	"testing"

	"priview"
	"priview/internal/accuracy"
	"priview/internal/core"
	"priview/internal/dataset/synth"
	"priview/internal/marginal"
	"priview/internal/privacy"
	"priview/internal/server"
)

// TestCuratorWorkflow runs the full deployment story: estimate N with a
// budget slice, plan, build, account for the budget, save, reload,
// serve over HTTP, and query through the client — verifying the final
// answers match the in-process ones exactly.
func TestCuratorWorkflow(t *testing.T) {
	data := synth.Kosarak(50000, 21)
	acct := privacy.NewAccountant(1.0)

	// Step 1: tiny budget for the count estimate.
	const countEps = 0.001
	if err := acct.Charge("count-estimate", countEps); err != nil {
		t.Fatal(err)
	}
	nEst := priview.NoisyCount(data, countEps, 5)

	// Step 2: plan and build with the remainder.
	mainEps := acct.Remaining()
	plan := priview.PlanDesign(data.Dim(), int(nEst), mainEps, 1)
	if err := acct.Charge("synopsis", mainEps); err != nil {
		t.Fatal(err)
	}
	syn := priview.Build(data, priview.Config{Epsilon: mainEps, Design: plan.Design}, 77)
	if acct.Remaining() > 1e-9 {
		t.Errorf("budget not fully allocated: %v left", acct.Remaining())
	}
	if err := acct.Charge("extra", 0.1); err != privacy.ErrBudgetExhausted {
		t.Errorf("over-budget charge not refused: %v", err)
	}

	// Step 3: persistence round trip.
	var buf bytes.Buffer
	if err := syn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Step 4: serve and query via HTTP.
	ts := httptest.NewServer(server.New(loaded, 0))
	defer ts.Close()
	client := server.NewClient(ts.URL, nil)
	attrs := []int{2, 9, 18, 27}
	viaHTTP, err := client.Marginal(attrs, "")
	if err != nil {
		t.Fatal(err)
	}
	direct := syn.Query(attrs)
	if !marginal.Equal(viaHTTP, direct, 1e-9) {
		t.Error("served answer differs from in-process answer")
	}

	// Step 5: the answer is actually useful.
	truth := data.Marginal(attrs)
	nerr := accuracy.NormalizedL2Error(viaHTTP, truth, float64(data.Len()))
	if nerr > 0.1 {
		t.Errorf("end-to-end error %v too large", nerr)
	}
}

// TestD64EndToEnd exercises the maximum supported dimensionality with
// the optimal spread-based design.
func TestD64EndToEnd(t *testing.T) {
	data := synth.MChain(2, 20000, 31)
	design := priview.BestDesign(64, 8, 2, 1)
	if design.W() != 72 {
		t.Fatalf("w = %d, want the optimal 72", design.W())
	}
	syn := priview.Build(data, priview.Config{Epsilon: 1, Design: design}, 3)
	// Consecutive attributes (strongly coupled by the order-2 chain).
	attrs := []int{30, 31, 32, 33}
	got := syn.Query(attrs)
	truth := data.Marginal(attrs)
	uniform := marginal.Uniform(attrs, float64(data.Len()))
	if accuracy.L2Error(got, truth) >= accuracy.L2Error(uniform, truth) {
		t.Error("d=64 reconstruction no better than uniform")
	}
	// Attributes 62, 63 exist and are covered.
	edge := syn.Query([]int{62, 63})
	if edge.Size() != 4 || math.IsNaN(edge.Total()) {
		t.Errorf("edge-attribute query broken: %+v", edge)
	}
}

// TestEmptyDataset verifies nothing panics and outputs degrade
// gracefully when N = 0.
func TestEmptyDataset(t *testing.T) {
	data := priview.NewDataset(9, nil)
	dg := priview.BestDesign(9, 6, 2, 1)
	syn := priview.Build(data, priview.Config{Epsilon: 1, Design: dg}, 4)
	got := syn.Query([]int{0, 5})
	for _, v := range got.Cells {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite cell on empty dataset: %v", got.Cells)
		}
	}
}

// TestSingleRecordPrivacy: with one record and small ε the output must
// be dominated by noise — the reconstruction should not reveal the
// record's cell reliably.
func TestSingleRecordPrivacy(t *testing.T) {
	data := priview.NewDataset(9, []uint64{0b101010101})
	dg := priview.BestDesign(9, 6, 2, 1)
	hits := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		syn := priview.Build(data, priview.Config{Epsilon: 0.05, Design: dg}, int64(i))
		got := syn.Query([]int{0, 2, 4})
		// Find argmax cell; the record sits at index 0b111 (bits 0,2,4
		// set).
		best, bestV := -1, math.Inf(-1)
		for c, v := range got.Cells {
			if v > bestV {
				bestV, best = v, c
			}
		}
		if best == 0b111 {
			hits++
		}
	}
	// With eps=0.05 the signal (1 count) is far below the noise
	// (scale w/eps ≥ 60): argmax should be nearly uniform over 8 cells.
	if hits > trials/2 {
		t.Errorf("argmax found the single record %d/%d times; noise too weak", hits, trials)
	}
}

// TestRepeatedQueriesConsistent: the synopsis is a fixed published
// object, so any two queries whose answers overlap logically must agree
// after reconstruction (covered case), and repeated identical queries
// must agree exactly.
func TestRepeatedQueriesConsistent(t *testing.T) {
	data := synth.MSNBC(30000, 8)
	dg := priview.BestDesign(9, 6, 2, 1)
	syn := priview.Build(data, priview.Config{Epsilon: 1, Design: dg}, 9)
	a := syn.Query([]int{1, 3, 5})
	b := syn.Query([]int{1, 3, 5})
	if !marginal.Equal(a, b, 0) {
		t.Error("identical queries disagree")
	}
	// Projections of two covered queries onto a shared pair agree
	// because the views are consistent.
	q1 := syn.Query([]int{1, 3})
	p1 := a.Project([]int{1, 3})
	if !marginal.Equal(q1, p1, 1e-6) {
		t.Error("overlapping covered queries inconsistent")
	}
}
